// Abstract syntax tree for the SQL/XNF dialect.
//
// The grammar is the SQL subset needed by the paper's examples plus the full
// XNF composite-object constructor of Sect. 2:
//
//   xnf_query  := OUT OF xnf_def (',' xnf_def)* TAKE take_list
//   xnf_def    := ident AS base_table
//               | ident AS '(' select ')'
//               | ident AS '(' RELATE parent VIA role ',' child (',' child)*
//                              [USING table [alias] (',' table [alias])*]
//                              [WHERE predicate] ')'
//   take_list  := '*' | take_item (',' take_item)*
//   take_item  := ident ['(' column (',' column)* ')']

#ifndef XNFDB_PARSER_AST_H_
#define XNFDB_PARSER_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace xnfdb {
namespace ast {

struct SelectStmt;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr {
  enum class Kind {
    kLiteral,
    kColumnRef,
    kBinary,
    kUnary,
    kExists,
    kInSubquery,
    kLike,
    kFuncCall,
  };

  explicit Expr(Kind kind) : kind(kind) {}
  virtual ~Expr() = default;

  virtual std::string ToString() const = 0;

  Kind kind;
};

using ExprPtr = std::unique_ptr<Expr>;

struct Literal : Expr {
  explicit Literal(Value v) : Expr(Kind::kLiteral), value(std::move(v)) {}
  std::string ToString() const override { return value.ToString(); }

  Value value;
};

// `column` or `qualifier.column`.
struct ColumnRef : Expr {
  ColumnRef(std::string qualifier, std::string column)
      : Expr(Kind::kColumnRef),
        qualifier(std::move(qualifier)),
        column(std::move(column)) {}
  std::string ToString() const override {
    return qualifier.empty() ? column : qualifier + "." + column;
  }

  std::string qualifier;  // table name or alias; may be empty
  std::string column;
};

// op is one of: AND OR = <> < <= > >= + - * /
struct Binary : Expr {
  Binary(std::string op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kBinary),
        op(std::move(op)),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  std::string ToString() const override {
    return "(" + lhs->ToString() + " " + op + " " + rhs->ToString() + ")";
  }

  std::string op;
  ExprPtr lhs;
  ExprPtr rhs;
};

// op is NOT or unary -.
struct Unary : Expr {
  Unary(std::string op, ExprPtr operand)
      : Expr(Kind::kUnary), op(std::move(op)), operand(std::move(operand)) {}
  std::string ToString() const override {
    return op + " (" + operand->ToString() + ")";
  }

  std::string op;
  ExprPtr operand;
};

// EXISTS (SELECT ...) — the form that reachability and path expressions
// compile into (paper Sect. 3.2 / 4.2).
struct Exists : Expr {
  explicit Exists(std::unique_ptr<SelectStmt> subquery);
  ~Exists() override;
  std::string ToString() const override;

  std::unique_ptr<SelectStmt> subquery;
};

// expr IN (SELECT ...); `negated` for NOT IN.
struct InSubquery : Expr {
  InSubquery(ExprPtr operand, std::unique_ptr<SelectStmt> subquery,
             bool negated);
  ~InSubquery() override;
  std::string ToString() const override;

  ExprPtr operand;
  std::unique_ptr<SelectStmt> subquery;
  bool negated;
};

struct Like : Expr {
  Like(ExprPtr operand, std::string pattern, bool negated)
      : Expr(Kind::kLike),
        operand(std::move(operand)),
        pattern(std::move(pattern)),
        negated(negated) {}
  std::string ToString() const override {
    return operand->ToString() + (negated ? " NOT LIKE '" : " LIKE '") +
           pattern + "'";
  }

  ExprPtr operand;
  std::string pattern;
  bool negated;
};

// Function call: aggregates (COUNT/SUM/MIN/MAX/AVG) and scalar functions
// (UPPER/LOWER/LENGTH/ABS/ROUND/MOD/CONCAT). Empty `args` means COUNT(*).
struct FuncCall : Expr {
  FuncCall(std::string name, std::vector<ExprPtr> args)
      : Expr(Kind::kFuncCall), name(std::move(name)), args(std::move(args)) {}
  std::string ToString() const override {
    if (args.empty()) return name + "(*)";
    std::string s = name + "(";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) s += ", ";
      s += args[i]->ToString();
    }
    return s + ")";
  }

  std::string name;
  std::vector<ExprPtr> args;
};

// Deep copy (subqueries included).
ExprPtr CloneExpr(const Expr& e);

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;            // null when is_star
  std::string alias;       // optional output name
  bool is_star = false;    // `*` or `qualifier.*`
  std::string star_qualifier;
};

struct TableRef {
  std::string table;                     // base table / view name
  std::string alias;                     // optional
  std::unique_ptr<SelectStmt> subquery;  // derived table (table expression)

  // The name this range variable is known by in predicates.
  const std::string& BindingName() const {
    return alias.empty() ? table : alias;
  }
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;

  // LIMIT n [OFFSET m]; -1 = absent. Applied after ORDER BY.
  int64_t limit = -1;
  int64_t offset = 0;

  // UNION chain: this SELECT combined with `union_next` (set semantics
  // unless union_all). ORDER BY / LIMIT of the head apply to the whole
  // union.
  std::unique_ptr<SelectStmt> union_next;
  bool union_all = false;

  std::string ToString() const;
};

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& s);

// ---------------------------------------------------------------------------
// XNF composite-object constructor
// ---------------------------------------------------------------------------

// RELATE parent VIA role, child ... [USING ...] [WHERE ...]
struct RelateDef {
  std::string parent;
  std::string role;                  // role name of the parent (VIA clause)
  std::vector<std::string> children;
  std::vector<TableRef> using_tables;  // helper tables (e.g. EMPSKILLS)
  ExprPtr where;                       // relationship predicate
};

struct XnfDef {
  enum class Kind { kTable, kRelationship };

  std::string name;
  Kind kind = Kind::kTable;

  // Reachability override (the paper's fine-grained "reachability
  // predicate", Sect. 4.1 phase 2): a FREE component keeps all its
  // candidate rows even when it is the child of a relationship, instead of
  // being restricted to rows reachable from a parent.
  bool free_reachability = false;

  // Component-table definitions: exactly one of these forms is set.
  std::string base_table;                // shortcut `xemp AS EMP`
  std::unique_ptr<SelectStmt> select;    // `xdept AS (SELECT ...)`
  // CO composition (closure, Sect. 2): `xemp AS deps_arc.xemp` makes the
  // extent of component `view_component` of stored XNF view `view_ref`
  // this component's candidate table.
  std::string view_ref;
  std::string view_component;

  // Relationship definition.
  RelateDef relate;
};

struct TakeItem {
  std::string name;                   // component or relationship name
  std::vector<std::string> columns;   // empty = all columns
};

struct XnfQuery {
  std::vector<XnfDef> defs;
  bool take_all = false;              // TAKE *
  std::vector<TakeItem> take;

  std::string ToString() const;
};

std::unique_ptr<XnfQuery> CloneXnf(const XnfQuery& q);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Statement {
  enum class Kind {
    kSelect,
    kXnfQuery,
    kCreateTable,
    kCreateView,
    kCreateIndex,
    kInsert,
    kUpdate,
    kDelete,
    kDropTable,
    kDropView,
    kMaterialize,    // MATERIALIZE <view>: pin a server-side matview
    kDematerialize,  // DEMATERIALIZE <view>: drop its materialization
  };

  explicit Statement(Kind kind) : kind(kind) {}
  virtual ~Statement() = default;

  Kind kind;
};

using StatementPtr = std::unique_ptr<Statement>;

struct SelectStatement : Statement {
  explicit SelectStatement(std::unique_ptr<SelectStmt> s)
      : Statement(Kind::kSelect), select(std::move(s)) {}
  std::unique_ptr<SelectStmt> select;
};

struct XnfStatement : Statement {
  explicit XnfStatement(std::unique_ptr<XnfQuery> q)
      : Statement(Kind::kXnfQuery), query(std::move(q)) {}
  std::unique_ptr<XnfQuery> query;
};

struct ForeignKeyClause {
  std::string column;
  std::string ref_table;
  std::string ref_column;
};

struct CreateTableStatement : Statement {
  CreateTableStatement() : Statement(Kind::kCreateTable) {}
  std::string name;
  std::vector<Column> columns;
  std::string primary_key;  // empty if none
  std::vector<ForeignKeyClause> foreign_keys;
};

struct CreateViewStatement : Statement {
  CreateViewStatement() : Statement(Kind::kCreateView) {}
  std::string name;
  bool is_xnf = false;
  std::string definition_text;            // body text after AS (for catalog)
  std::unique_ptr<SelectStmt> select;     // when !is_xnf
  std::unique_ptr<XnfQuery> xnf;          // when is_xnf
};

struct CreateIndexStatement : Statement {
  CreateIndexStatement() : Statement(Kind::kCreateIndex) {}
  std::string table;
  std::string column;
  bool ordered = false;  // CREATE ORDERED INDEX: tree index (range scans)
};

struct InsertStatement : Statement {
  InsertStatement() : Statement(Kind::kInsert) {}
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;  // literal-valued expressions
};

struct UpdateStatement : Statement {
  UpdateStatement() : Statement(Kind::kUpdate) {}
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStatement : Statement {
  DeleteStatement() : Statement(Kind::kDelete) {}
  std::string table;
  ExprPtr where;
};

struct DropStatement : Statement {
  explicit DropStatement(Kind kind) : Statement(kind) {}
  std::string name;
};

// MATERIALIZE <view> / DEMATERIALIZE <view> (src/matview/): pins the named
// view's result in the server-side materialized-view store, or drops the
// materialization (the view definition itself is untouched).
struct MaterializeStatement : Statement {
  explicit MaterializeStatement(Kind kind) : Statement(kind) {}
  std::string name;
};

}  // namespace ast
}  // namespace xnfdb

#endif  // XNFDB_PARSER_AST_H_
