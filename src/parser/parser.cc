#include "parser/parser.h"

#include <utility>

#include "parser/lexer.h"

namespace xnfdb {

namespace {

using ast::Binary;
using ast::ColumnRef;
using ast::Exists;
using ast::Expr;
using ast::ExprPtr;
using ast::FuncCall;
using ast::InSubquery;
using ast::Like;
using ast::Literal;
using ast::OrderItem;
using ast::RelateDef;
using ast::SelectItem;
using ast::SelectStmt;
using ast::TableRef;
using ast::TakeItem;
using ast::Unary;
using ast::XnfDef;
using ast::XnfQuery;

bool IsAggregateName(const std::string& name) {
  return name == "COUNT" || name == "SUM" || name == "MIN" || name == "MAX" ||
         name == "AVG";
}

// The recursive-descent parser. One instance per input string.
class Parser {
 public:
  Parser(const std::string& input, std::vector<Token> tokens)
      : input_(input), tokens_(std::move(tokens)) {}

  Result<ast::StatementPtr> ParseSingleStatement() {
    XNFDB_ASSIGN_OR_RETURN(ast::StatementPtr stmt, ParseStatementBody());
    Accept(";");
    if (!AtEnd()) return Error("unexpected trailing tokens");
    return stmt;
  }

  Result<std::vector<ast::StatementPtr>> ParseAll() {
    std::vector<ast::StatementPtr> stmts;
    while (!AtEnd()) {
      XNFDB_ASSIGN_OR_RETURN(ast::StatementPtr stmt, ParseStatementBody());
      stmts.push_back(std::move(stmt));
      if (!Accept(";")) break;
    }
    if (!AtEnd()) return Error("unexpected trailing tokens");
    return stmts;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelectOnly() {
    XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect());
    Accept(";");
    if (!AtEnd()) return Error("unexpected trailing tokens");
    return sel;
  }

  Result<std::unique_ptr<XnfQuery>> ParseXnfOnly() {
    XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<XnfQuery> q, ParseXnf());
    Accept(";");
    if (!AtEnd()) return Error("unexpected trailing tokens");
    return q;
  }

 private:
  // --- token helpers ------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool Check(const std::string& kw_or_sym) const {
    return Peek().IsKeyword(kw_or_sym) || Peek().IsSymbol(kw_or_sym);
  }
  bool Accept(const std::string& kw_or_sym) {
    if (Check(kw_or_sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(const std::string& kw_or_sym) {
    if (Accept(kw_or_sym)) return Status::Ok();
    return Error("expected '" + kw_or_sym + "'");
  }

  Result<std::string> ExpectIdent(const std::string& what) {
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError("expected " + what + " near offset " +
                                std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  Status Error(const std::string& msg) const {
    std::string near;
    const Token& t = Peek();
    if (t.type != TokenType::kEnd) near = " near '" + t.text + "'";
    return Status::ParseError(msg + near + " (offset " +
                              std::to_string(t.offset) + ")");
  }

  // --- statements ----------------------------------------------------------
  Result<ast::StatementPtr> ParseStatementBody() {
    if (Check("SELECT")) {
      XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect());
      return ast::StatementPtr(
          std::make_unique<ast::SelectStatement>(std::move(sel)));
    }
    if (Check("OUT")) {
      XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<XnfQuery> q, ParseXnf());
      return ast::StatementPtr(
          std::make_unique<ast::XnfStatement>(std::move(q)));
    }
    if (Accept("CREATE")) {
      if (Accept("TABLE")) return ParseCreateTable();
      if (Accept("VIEW")) return ParseCreateView();
      if (Accept("INDEX")) return ParseCreateIndex(false);
      if (Accept("ORDERED")) {
        XNFDB_RETURN_IF_ERROR(Expect("INDEX"));
        return ParseCreateIndex(true);
      }
      return Error("expected TABLE, VIEW or INDEX after CREATE");
    }
    if (Accept("DROP")) {
      bool is_table = Accept("TABLE");
      if (!is_table) XNFDB_RETURN_IF_ERROR(Expect("VIEW"));
      auto stmt = std::make_unique<ast::DropStatement>(
          is_table ? ast::Statement::Kind::kDropTable
                   : ast::Statement::Kind::kDropView);
      XNFDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdent("name"));
      return ast::StatementPtr(std::move(stmt));
    }
    if (Accept("INSERT")) return ParseInsert();
    if (Accept("UPDATE")) return ParseUpdate();
    if (Accept("DELETE")) return ParseDelete();
    if (Accept("MATERIALIZE")) return ParseMaterialize(true);
    if (Accept("DEMATERIALIZE")) return ParseMaterialize(false);
    return Error("expected a statement");
  }

  Result<ast::StatementPtr> ParseMaterialize(bool materialize) {
    auto stmt = std::make_unique<ast::MaterializeStatement>(
        materialize ? ast::Statement::Kind::kMaterialize
                    : ast::Statement::Kind::kDematerialize);
    XNFDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdent("view name"));
    return ast::StatementPtr(std::move(stmt));
  }

  Result<ast::StatementPtr> ParseCreateTable() {
    auto stmt = std::make_unique<ast::CreateTableStatement>();
    XNFDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdent("table name"));
    XNFDB_RETURN_IF_ERROR(Expect("("));
    while (true) {
      if (Accept("PRIMARY")) {
        XNFDB_RETURN_IF_ERROR(Expect("KEY"));
        XNFDB_RETURN_IF_ERROR(Expect("("));
        XNFDB_ASSIGN_OR_RETURN(stmt->primary_key, ExpectIdent("PK column"));
        XNFDB_RETURN_IF_ERROR(Expect(")"));
      } else if (Accept("FOREIGN")) {
        XNFDB_RETURN_IF_ERROR(Expect("KEY"));
        XNFDB_RETURN_IF_ERROR(Expect("("));
        ast::ForeignKeyClause fk;
        XNFDB_ASSIGN_OR_RETURN(fk.column, ExpectIdent("FK column"));
        XNFDB_RETURN_IF_ERROR(Expect(")"));
        XNFDB_RETURN_IF_ERROR(Expect("REFERENCES"));
        XNFDB_ASSIGN_OR_RETURN(fk.ref_table, ExpectIdent("referenced table"));
        XNFDB_RETURN_IF_ERROR(Expect("("));
        XNFDB_ASSIGN_OR_RETURN(fk.ref_column, ExpectIdent("referenced column"));
        XNFDB_RETURN_IF_ERROR(Expect(")"));
        stmt->foreign_keys.push_back(std::move(fk));
      } else {
        Column col;
        XNFDB_ASSIGN_OR_RETURN(col.name, ExpectIdent("column name"));
        XNFDB_ASSIGN_OR_RETURN(col.type, ParseType());
        stmt->columns.push_back(std::move(col));
      }
      if (!Accept(",")) break;
    }
    XNFDB_RETURN_IF_ERROR(Expect(")"));
    return ast::StatementPtr(std::move(stmt));
  }

  Result<DataType> ParseType() {
    XNFDB_ASSIGN_OR_RETURN(std::string name, ExpectIdent("type name"));
    DataType type;
    if (name == "INTEGER" || name == "INT" || name == "BIGINT") {
      type = DataType::kInt;
    } else if (name == "DOUBLE" || name == "FLOAT" || name == "REAL") {
      type = DataType::kDouble;
    } else if (name == "VARCHAR" || name == "CHAR" || name == "TEXT" ||
               name == "STRING") {
      type = DataType::kString;
    } else if (name == "BOOLEAN" || name == "BOOL") {
      type = DataType::kBool;
    } else {
      return Status::ParseError("unknown type '" + name + "'");
    }
    // Optional length, e.g. VARCHAR(30); accepted and ignored.
    if (Accept("(")) {
      if (Peek().type == TokenType::kInt) Advance();
      XNFDB_RETURN_IF_ERROR(Expect(")"));
    }
    return type;
  }

  Result<ast::StatementPtr> ParseCreateView() {
    auto stmt = std::make_unique<ast::CreateViewStatement>();
    XNFDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdent("view name"));
    XNFDB_RETURN_IF_ERROR(Expect("AS"));
    size_t body_start = Peek().offset;
    if (Check("OUT")) {
      stmt->is_xnf = true;
      XNFDB_ASSIGN_OR_RETURN(stmt->xnf, ParseXnf());
    } else if (Check("SELECT")) {
      XNFDB_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    } else {
      return Error("expected SELECT or OUT OF after CREATE VIEW ... AS");
    }
    size_t body_end =
        AtEnd() || Peek().IsSymbol(";") ? Peek().offset : input_.size();
    stmt->definition_text = input_.substr(body_start, body_end - body_start);
    return ast::StatementPtr(std::move(stmt));
  }

  Result<ast::StatementPtr> ParseCreateIndex(bool ordered) {
    auto stmt = std::make_unique<ast::CreateIndexStatement>();
    stmt->ordered = ordered;
    // Optional index name, ignored: CREATE INDEX [name] ON t(c).
    if (Peek().type == TokenType::kIdent && !Check("ON")) Advance();
    XNFDB_RETURN_IF_ERROR(Expect("ON"));
    XNFDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdent("table name"));
    XNFDB_RETURN_IF_ERROR(Expect("("));
    XNFDB_ASSIGN_OR_RETURN(stmt->column, ExpectIdent("column name"));
    XNFDB_RETURN_IF_ERROR(Expect(")"));
    return ast::StatementPtr(std::move(stmt));
  }

  Result<ast::StatementPtr> ParseInsert() {
    XNFDB_RETURN_IF_ERROR(Expect("INTO"));
    auto stmt = std::make_unique<ast::InsertStatement>();
    XNFDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdent("table name"));
    XNFDB_RETURN_IF_ERROR(Expect("VALUES"));
    while (true) {
      XNFDB_RETURN_IF_ERROR(Expect("("));
      std::vector<ExprPtr> row;
      while (true) {
        XNFDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (!Accept(",")) break;
      }
      XNFDB_RETURN_IF_ERROR(Expect(")"));
      stmt->rows.push_back(std::move(row));
      if (!Accept(",")) break;
    }
    return ast::StatementPtr(std::move(stmt));
  }

  Result<ast::StatementPtr> ParseUpdate() {
    auto stmt = std::make_unique<ast::UpdateStatement>();
    XNFDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdent("table name"));
    XNFDB_RETURN_IF_ERROR(Expect("SET"));
    while (true) {
      XNFDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      XNFDB_RETURN_IF_ERROR(Expect("="));
      XNFDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
      if (!Accept(",")) break;
    }
    if (Accept("WHERE")) {
      XNFDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return ast::StatementPtr(std::move(stmt));
  }

  Result<ast::StatementPtr> ParseDelete() {
    XNFDB_RETURN_IF_ERROR(Expect("FROM"));
    auto stmt = std::make_unique<ast::DeleteStatement>();
    XNFDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdent("table name"));
    if (Accept("WHERE")) {
      XNFDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return ast::StatementPtr(std::move(stmt));
  }

  // --- SELECT ---------------------------------------------------------------
  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    XNFDB_RETURN_IF_ERROR(Expect("SELECT"));
    auto sel = std::make_unique<SelectStmt>();
    sel->distinct = Accept("DISTINCT");
    while (true) {
      XNFDB_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      sel->items.push_back(std::move(item));
      if (!Accept(",")) break;
    }
    if (Accept("FROM")) {
      while (true) {
        XNFDB_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        sel->from.push_back(std::move(ref));
        if (!Accept(",")) break;
      }
    }
    if (Accept("WHERE")) {
      XNFDB_ASSIGN_OR_RETURN(sel->where, ParseExpr());
    }
    if (Accept("GROUP")) {
      XNFDB_RETURN_IF_ERROR(Expect("BY"));
      while (true) {
        XNFDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        sel->group_by.push_back(std::move(e));
        if (!Accept(",")) break;
      }
    }
    if (Accept("HAVING")) {
      XNFDB_ASSIGN_OR_RETURN(sel->having, ParseExpr());
    }
    if (Accept("UNION")) {
      sel->union_all = Accept("ALL");
      XNFDB_ASSIGN_OR_RETURN(sel->union_next, ParseSelect());
      // ORDER BY / LIMIT of the trailing member bind to the whole chain.
      if (sel->union_next != nullptr) {
        sel->order_by = std::move(sel->union_next->order_by);
        sel->limit = sel->union_next->limit;
        sel->offset = sel->union_next->offset;
        sel->union_next->limit = -1;
        sel->union_next->offset = 0;
      }
      return sel;
    }
    if (Accept("ORDER")) {
      XNFDB_RETURN_IF_ERROR(Expect("BY"));
      while (true) {
        OrderItem item;
        XNFDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Accept("DESC")) {
          item.descending = true;
        } else {
          Accept("ASC");
        }
        sel->order_by.push_back(std::move(item));
        if (!Accept(",")) break;
      }
    }
    if (Accept("LIMIT")) {
      if (Peek().type != TokenType::kInt) {
        return Status::ParseError("LIMIT requires an integer literal");
      }
      sel->limit = Advance().int_value;
      if (Accept("OFFSET")) {
        if (Peek().type != TokenType::kInt) {
          return Status::ParseError("OFFSET requires an integer literal");
        }
        sel->offset = Advance().int_value;
      }
    }
    return sel;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Accept("*")) {
      item.is_star = true;
      return item;
    }
    // `qualifier.*`
    if (Peek().type == TokenType::kIdent && Peek(1).IsSymbol(".") &&
        Peek(2).IsSymbol("*")) {
      item.is_star = true;
      item.star_qualifier = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
      return item;
    }
    XNFDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (Accept("AS")) {
      XNFDB_ASSIGN_OR_RETURN(item.alias, ExpectIdent("column alias"));
    } else if (Peek().type == TokenType::kIdent && !IsClauseKeyword()) {
      item.alias = Advance().text;
    }
    return item;
  }

  // True when the next identifier starts a clause rather than an alias.
  bool IsClauseKeyword() const {
    static const char* kKeywords[] = {"FROM",   "WHERE", "GROUP",  "ORDER",
                                      "HAVING", "UNION", "LIMIT",  "OFFSET",
                                      "TAKE",   "OUT",   "USING",  "VIA",
                                      "RELATE"};
    for (const char* kw : kKeywords) {
      if (Peek().IsKeyword(kw)) return true;
    }
    return false;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (Accept("(")) {
      XNFDB_ASSIGN_OR_RETURN(ref.subquery, ParseSelect());
      XNFDB_RETURN_IF_ERROR(Expect(")"));
    } else {
      XNFDB_ASSIGN_OR_RETURN(ref.table, ExpectIdent("table name"));
    }
    if (Accept("AS")) {
      XNFDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("table alias"));
    } else if (Peek().type == TokenType::kIdent && !IsClauseKeyword()) {
      ref.alias = Advance().text;
    }
    if (ref.subquery && ref.alias.empty()) {
      return Status::ParseError("derived table requires an alias");
    }
    return ref;
  }

  // --- XNF -------------------------------------------------------------------
  Result<std::unique_ptr<XnfQuery>> ParseXnf() {
    XNFDB_RETURN_IF_ERROR(Expect("OUT"));
    XNFDB_RETURN_IF_ERROR(Expect("OF"));
    auto q = std::make_unique<XnfQuery>();
    while (true) {
      XNFDB_ASSIGN_OR_RETURN(XnfDef def, ParseXnfDef());
      q->defs.push_back(std::move(def));
      if (!Accept(",")) break;
    }
    XNFDB_RETURN_IF_ERROR(Expect("TAKE"));
    if (Accept("*")) {
      q->take_all = true;
      return q;
    }
    while (true) {
      TakeItem item;
      XNFDB_ASSIGN_OR_RETURN(item.name, ExpectIdent("TAKE item"));
      if (Accept("(")) {
        while (true) {
          XNFDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column"));
          item.columns.push_back(std::move(col));
          if (!Accept(",")) break;
        }
        XNFDB_RETURN_IF_ERROR(Expect(")"));
      }
      q->take.push_back(std::move(item));
      if (!Accept(",")) break;
    }
    return q;
  }

  Result<XnfDef> ParseXnfDef() {
    XnfDef def;
    XNFDB_ASSIGN_OR_RETURN(def.name, ExpectIdent("XNF component name"));
    XNFDB_RETURN_IF_ERROR(Expect("AS"));
    // Reachability override: `x AS FREE EMP` / `x AS FREE (SELECT ...)`.
    def.free_reachability = Accept("FREE");
    if (Accept("(")) {
      if (Check("RELATE")) {
        def.kind = XnfDef::Kind::kRelationship;
        XNFDB_ASSIGN_OR_RETURN(def.relate, ParseRelate());
      } else if (Check("SELECT")) {
        def.kind = XnfDef::Kind::kTable;
        XNFDB_ASSIGN_OR_RETURN(def.select, ParseSelect());
      } else {
        return Status::ParseError(
            "expected SELECT or RELATE in XNF definition of " + def.name);
      }
      XNFDB_RETURN_IF_ERROR(Expect(")"));
      return def;
    }
    // Shortcut `xemp AS EMP`, or composition `xemp AS view.component`.
    def.kind = XnfDef::Kind::kTable;
    XNFDB_ASSIGN_OR_RETURN(def.base_table, ExpectIdent("base table name"));
    if (Accept(".")) {
      def.view_ref = std::move(def.base_table);
      def.base_table.clear();
      XNFDB_ASSIGN_OR_RETURN(def.view_component,
                             ExpectIdent("view component name"));
    }
    return def;
  }

  Result<RelateDef> ParseRelate() {
    XNFDB_RETURN_IF_ERROR(Expect("RELATE"));
    RelateDef rel;
    XNFDB_ASSIGN_OR_RETURN(rel.parent, ExpectIdent("parent component"));
    if (Accept("VIA")) {
      XNFDB_ASSIGN_OR_RETURN(rel.role, ExpectIdent("role name"));
    }
    while (Accept(",")) {
      XNFDB_ASSIGN_OR_RETURN(std::string child,
                             ExpectIdent("child component"));
      rel.children.push_back(std::move(child));
    }
    if (rel.children.empty()) {
      return Status::ParseError("relationship of " + rel.parent +
                                " needs at least one child component");
    }
    if (Accept("USING")) {
      while (true) {
        TableRef ref;
        XNFDB_ASSIGN_OR_RETURN(ref.table, ExpectIdent("USING table"));
        if (Peek().type == TokenType::kIdent && !Check("WHERE") &&
            !IsClauseKeyword()) {
          ref.alias = Advance().text;
        }
        rel.using_tables.push_back(std::move(ref));
        if (!Accept(",")) break;
      }
    }
    if (Accept("WHERE")) {
      XNFDB_ASSIGN_OR_RETURN(rel.where, ParseExpr());
    }
    return rel;
  }

  // --- expressions -----------------------------------------------------------
  // Precedence: OR < AND < NOT < comparison/LIKE/IN < additive < term < unary.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    XNFDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Accept("OR")) {
      XNFDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = std::make_unique<Binary>("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    XNFDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Accept("AND")) {
      XNFDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = std::make_unique<Binary>("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Accept("NOT")) {
      XNFDB_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return ExprPtr(std::make_unique<Unary>("NOT", std::move(e)));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    XNFDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    static const char* kOps[] = {"=", "<>", "<=", ">=", "<", ">"};
    for (const char* op : kOps) {
      if (Accept(op)) {
        XNFDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return ExprPtr(
            std::make_unique<Binary>(op, std::move(lhs), std::move(rhs)));
      }
    }
    bool negated = false;
    if (Check("NOT") && (Peek(1).IsKeyword("LIKE") || Peek(1).IsKeyword("IN") ||
                         Peek(1).IsKeyword("BETWEEN"))) {
      Advance();
      negated = true;
    }
    if (Accept("LIKE")) {
      if (Peek().type != TokenType::kString) {
        return Status::ParseError("LIKE requires a string literal pattern");
      }
      std::string pattern = Advance().text;
      return ExprPtr(
          std::make_unique<Like>(std::move(lhs), std::move(pattern), negated));
    }
    if (Accept("BETWEEN")) {
      // a BETWEEN x AND y  =>  a >= x AND a <= y (negated: wrapped in NOT).
      XNFDB_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      XNFDB_RETURN_IF_ERROR(Expect("AND"));
      XNFDB_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr lhs2 = ast::CloneExpr(*lhs);
      ExprPtr range = std::make_unique<Binary>(
          "AND",
          std::make_unique<Binary>(">=", std::move(lhs), std::move(lo)),
          std::make_unique<Binary>("<=", std::move(lhs2), std::move(hi)));
      if (negated) {
        return ExprPtr(std::make_unique<Unary>("NOT", std::move(range)));
      }
      return range;
    }
    if (Accept("IN")) {
      XNFDB_RETURN_IF_ERROR(Expect("("));
      if (Check("SELECT")) {
        XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelect());
        XNFDB_RETURN_IF_ERROR(Expect(")"));
        return ExprPtr(std::make_unique<InSubquery>(std::move(lhs),
                                                    std::move(sub), negated));
      }
      // Value list: a IN (e1, e2, ...) => a = e1 OR a = e2 OR ...
      ExprPtr chain;
      while (true) {
        XNFDB_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        ExprPtr eq = std::make_unique<Binary>("=", ast::CloneExpr(*lhs),
                                              std::move(item));
        chain = chain == nullptr
                    ? std::move(eq)
                    : ExprPtr(std::make_unique<Binary>("OR", std::move(chain),
                                                       std::move(eq)));
        if (!Accept(",")) break;
      }
      XNFDB_RETURN_IF_ERROR(Expect(")"));
      if (negated) {
        return ExprPtr(std::make_unique<Unary>("NOT", std::move(chain)));
      }
      return chain;
    }
    if (negated) {
      return Status::ParseError("expected LIKE, IN or BETWEEN after NOT");
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    XNFDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
    while (Check("+") || Check("-")) {
      std::string op = Advance().text;
      XNFDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
      lhs = std::make_unique<Binary>(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseTerm() {
    XNFDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Check("*") || Check("/")) {
      std::string op = Advance().text;
      XNFDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = std::make_unique<Binary>(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept("-")) {
      XNFDB_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return ExprPtr(std::make_unique<Unary>("-", std::move(e)));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt: {
        int64_t v = Advance().int_value;
        return ExprPtr(std::make_unique<Literal>(Value(v)));
      }
      case TokenType::kDouble: {
        double v = Advance().double_value;
        return ExprPtr(std::make_unique<Literal>(Value(v)));
      }
      case TokenType::kString: {
        std::string v = Advance().text;
        return ExprPtr(std::make_unique<Literal>(Value(std::move(v))));
      }
      case TokenType::kSymbol:
        if (t.text == "(") {
          Advance();
          XNFDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          XNFDB_RETURN_IF_ERROR(Expect(")"));
          return e;
        }
        break;
      case TokenType::kIdent: {
        if (t.text == "NULL") {
          Advance();
          return ExprPtr(std::make_unique<Literal>(Value::Null()));
        }
        if (t.text == "TRUE" || t.text == "FALSE") {
          bool v = Advance().text == "TRUE";
          return ExprPtr(std::make_unique<Literal>(Value(v)));
        }
        if (t.text == "EXISTS") {
          Advance();
          XNFDB_RETURN_IF_ERROR(Expect("("));
          XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub,
                                 ParseSelect());
          XNFDB_RETURN_IF_ERROR(Expect(")"));
          return ExprPtr(std::make_unique<Exists>(std::move(sub)));
        }
        if (Peek(1).IsSymbol("(")) {
          // Function call: aggregate or scalar. `*` is only COUNT(*).
          std::string name = Advance().text;
          Advance();  // '('
          std::vector<ExprPtr> args;
          if (Accept("*")) {
            if (name != "COUNT") {
              return Status::ParseError("'*' argument is only valid in "
                                        "COUNT(*)");
            }
          } else if (!Check(")")) {
            while (true) {
              XNFDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
              if (!Accept(",")) break;
            }
          }
          XNFDB_RETURN_IF_ERROR(Expect(")"));
          if (IsAggregateName(name) && args.size() > 1) {
            return Status::ParseError(name + " takes one argument");
          }
          return ExprPtr(std::make_unique<FuncCall>(name, std::move(args)));
        }
        // Column reference: ident or ident.ident.
        std::string first = Advance().text;
        if (Accept(".")) {
          XNFDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
          return ExprPtr(std::make_unique<ColumnRef>(first, std::move(col)));
        }
        return ExprPtr(std::make_unique<ColumnRef>("", std::move(first)));
      }
      default:
        break;
    }
    return Status::ParseError("expected an expression near offset " +
                              std::to_string(t.offset));
  }

  const std::string& input_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ast::StatementPtr> ParseStatement(const std::string& sql) {
  XNFDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser p(sql, std::move(tokens));
  return p.ParseSingleStatement();
}

Result<std::vector<ast::StatementPtr>> ParseScript(const std::string& sql) {
  XNFDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser p(sql, std::move(tokens));
  return p.ParseAll();
}

Result<std::unique_ptr<ast::SelectStmt>> ParseSelectQuery(
    const std::string& sql) {
  XNFDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser p(sql, std::move(tokens));
  return p.ParseSelectOnly();
}

Result<std::unique_ptr<ast::XnfQuery>> ParseXnfQuery(const std::string& sql) {
  XNFDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser p(sql, std::move(tokens));
  return p.ParseXnfOnly();
}

}  // namespace xnfdb
