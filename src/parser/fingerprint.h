// Query fingerprinting (pg_stat_statements-style): renders a statement's
// *shape* — the AST with every literal (and LIMIT/OFFSET constant)
// normalized to `?` — and hashes it to a stable 64-bit digest. Two
// statements that differ only in constants share a fingerprint; any
// structural difference (tables, columns, operators, clause order)
// produces a distinct one.
//
// Multi-row INSERTs are collapsed to a single `(?, ...)` values row so a
// bulk load does not fan out into one shape per batch size.
//
// The digest keys the per-statement statistics store
// (obs/statement_stats.h) exposed through `sys$statements`.

#ifndef XNFDB_PARSER_FINGERPRINT_H_
#define XNFDB_PARSER_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "parser/ast.h"

namespace xnfdb {

struct Fingerprint {
  std::string text;     // normalized statement text
  uint64_t digest = 0;  // FNV-1a of `text`
};

// FNV-1a over `s`; exposed for tests and external digest comparisons.
uint64_t FingerprintHash(const std::string& s);

Fingerprint FingerprintSelect(const ast::SelectStmt& select);
Fingerprint FingerprintXnf(const ast::XnfQuery& query);
// Any statement kind (queries, DML, DDL).
Fingerprint FingerprintStatement(const ast::Statement& stmt);

}  // namespace xnfdb

#endif  // XNFDB_PARSER_FINGERPRINT_H_
