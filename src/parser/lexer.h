// Tokenizer for the SQL/XNF dialect.
//
// Identifiers and keywords are case-insensitive and normalized to upper
// case; string literals ('...') preserve case. Comments: `-- to end of line`.

#ifndef XNFDB_PARSER_LEXER_H_
#define XNFDB_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xnfdb {

enum class TokenType {
  kIdent,    // identifier or keyword, upper-cased in `text`
  kInt,      // integer literal, value in `int_value`
  kDouble,   // floating literal, value in `double_value`
  kString,   // string literal, unquoted content in `text`
  kSymbol,   // punctuation / operator, verbatim in `text`
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;  // byte offset in the input, for error messages

  bool IsKeyword(const std::string& kw) const {
    return type == TokenType::kIdent && text == kw;
  }
  bool IsSymbol(const std::string& s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

// Tokenizes `input` completely (appends a kEnd token).
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace xnfdb

#endif  // XNFDB_PARSER_LEXER_H_
