#include "parser/lexer.h"

#include <cctype>

#include "common/schema.h"

namespace xnfdb {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  // '$' admits system-object names like SYS$METRICS (it cannot *start* an
  // identifier, so expression syntax is unaffected).
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      tok.type = TokenType::kIdent;
      tok.text = ToUpperIdent(input.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          is_double = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        } else {
          i = save;  // Not an exponent; 'e' starts an identifier.
        }
      }
      std::string lit = input.substr(start, i - start);
      if (is_double) {
        tok.type = TokenType::kDouble;
        tok.double_value = std::stod(lit);
      } else {
        tok.type = TokenType::kInt;
        tok.int_value = std::stoll(lit);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string content;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            content += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        content += input[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(content);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto two = input.substr(i, 2);
    if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
      tok.type = TokenType::kSymbol;
      tok.text = (two == "!=") ? "<>" : two;
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    static const std::string kSingles = "()[],.;*=<>+-/";
    if (kSingles.find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace xnfdb
