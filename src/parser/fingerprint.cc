#include "parser/fingerprint.h"

#include "common/str_util.h"

namespace xnfdb {

namespace {

using ast::Expr;
using ast::SelectStmt;
using ast::TableRef;

std::string NormExpr(const Expr& e);
std::string NormSelect(const SelectStmt& s);

std::string NormTableRef(const TableRef& t) {
  std::string p = t.subquery ? "(" + NormSelect(*t.subquery) + ")" : t.table;
  if (!t.alias.empty()) p += " " + t.alias;
  return p;
}

std::string NormExpr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return "?";
    case Expr::Kind::kColumnRef: {
      const auto& c = static_cast<const ast::ColumnRef&>(e);
      return c.qualifier.empty() ? c.column : c.qualifier + "." + c.column;
    }
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const ast::Binary&>(e);
      return "(" + NormExpr(*b.lhs) + " " + b.op + " " + NormExpr(*b.rhs) +
             ")";
    }
    case Expr::Kind::kUnary: {
      const auto& u = static_cast<const ast::Unary&>(e);
      return u.op + " (" + NormExpr(*u.operand) + ")";
    }
    case Expr::Kind::kExists: {
      const auto& x = static_cast<const ast::Exists&>(e);
      return "EXISTS (" + NormSelect(*x.subquery) + ")";
    }
    case Expr::Kind::kInSubquery: {
      const auto& in = static_cast<const ast::InSubquery&>(e);
      return NormExpr(*in.operand) + (in.negated ? " NOT IN (" : " IN (") +
             NormSelect(*in.subquery) + ")";
    }
    case Expr::Kind::kLike: {
      const auto& l = static_cast<const ast::Like&>(e);
      // The pattern is a constant: normalize like any other literal.
      return NormExpr(*l.operand) + (l.negated ? " NOT LIKE ?" : " LIKE ?");
    }
    case Expr::Kind::kFuncCall: {
      const auto& f = static_cast<const ast::FuncCall&>(e);
      if (f.args.empty()) return f.name + "(*)";
      std::string s = f.name + "(";
      for (size_t i = 0; i < f.args.size(); ++i) {
        if (i > 0) s += ", ";
        s += NormExpr(*f.args[i]);
      }
      return s + ")";
    }
  }
  return "?";
}

std::string NormSelect(const SelectStmt& s) {
  std::string out = "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  std::vector<std::string> parts;
  for (const ast::SelectItem& item : s.items) {
    if (item.is_star) {
      parts.push_back(item.star_qualifier.empty()
                          ? "*"
                          : item.star_qualifier + ".*");
    } else {
      std::string p = NormExpr(*item.expr);
      if (!item.alias.empty()) p += " AS " + item.alias;
      parts.push_back(std::move(p));
    }
  }
  out += Join(parts, ", ");
  if (!s.from.empty()) {
    parts.clear();
    for (const TableRef& t : s.from) parts.push_back(NormTableRef(t));
    out += " FROM " + Join(parts, ", ");
  }
  if (s.where) out += " WHERE " + NormExpr(*s.where);
  if (!s.group_by.empty()) {
    parts.clear();
    for (const ast::ExprPtr& g : s.group_by) parts.push_back(NormExpr(*g));
    out += " GROUP BY " + Join(parts, ", ");
  }
  if (s.having) out += " HAVING " + NormExpr(*s.having);
  if (!s.order_by.empty()) {
    parts.clear();
    for (const ast::OrderItem& o : s.order_by) {
      parts.push_back(NormExpr(*o.expr) + (o.descending ? " DESC" : ""));
    }
    out += " ORDER BY " + Join(parts, ", ");
  }
  // LIMIT/OFFSET constants are normalized like literals: paging through a
  // result set is one shape, not one per page.
  if (s.limit >= 0) out += " LIMIT ?";
  if (s.offset > 0) out += " OFFSET ?";
  if (s.union_next) {
    out += s.union_all ? " UNION ALL " : " UNION ";
    out += NormSelect(*s.union_next);
  }
  return out;
}

std::string NormXnf(const ast::XnfQuery& q) {
  std::string out = "OUT OF ";
  std::vector<std::string> parts;
  for (const ast::XnfDef& def : q.defs) {
    std::string p = def.name + " AS ";
    if (def.free_reachability) p += "FREE ";
    if (def.kind == ast::XnfDef::Kind::kTable) {
      if (def.select) {
        p += "(" + NormSelect(*def.select) + ")";
      } else if (!def.view_ref.empty()) {
        p += def.view_ref + "." + def.view_component;
      } else {
        p += def.base_table;
      }
    } else {
      p += "(RELATE " + def.relate.parent + " VIA " + def.relate.role;
      for (const std::string& child : def.relate.children) p += ", " + child;
      if (!def.relate.using_tables.empty()) {
        std::vector<std::string> using_parts;
        for (const TableRef& t : def.relate.using_tables) {
          using_parts.push_back(NormTableRef(t));
        }
        p += " USING " + Join(using_parts, ", ");
      }
      if (def.relate.where) p += " WHERE " + NormExpr(*def.relate.where);
      p += ")";
    }
    parts.push_back(std::move(p));
  }
  out += Join(parts, ", ");
  out += " TAKE ";
  if (q.take_all) {
    out += "*";
  } else {
    parts.clear();
    for (const ast::TakeItem& item : q.take) {
      std::string p = item.name;
      if (!item.columns.empty()) p += "(" + Join(item.columns, ", ") + ")";
      parts.push_back(std::move(p));
    }
    out += Join(parts, ", ");
  }
  return out;
}

std::string NormStatement(const ast::Statement& stmt) {
  using Kind = ast::Statement::Kind;
  switch (stmt.kind) {
    case Kind::kSelect:
      return NormSelect(*static_cast<const ast::SelectStatement&>(stmt).select);
    case Kind::kXnfQuery:
      return NormXnf(*static_cast<const ast::XnfStatement&>(stmt).query);
    case Kind::kCreateTable: {
      const auto& s = static_cast<const ast::CreateTableStatement&>(stmt);
      std::string out = "CREATE TABLE " + s.name + " (";
      std::vector<std::string> parts;
      for (const Column& col : s.columns) {
        parts.push_back(col.name + " " + DataTypeName(col.type));
      }
      out += Join(parts, ", ") + ")";
      return out;
    }
    case Kind::kCreateView: {
      const auto& s = static_cast<const ast::CreateViewStatement&>(stmt);
      std::string body = s.is_xnf ? NormXnf(*s.xnf) : NormSelect(*s.select);
      return "CREATE VIEW " + s.name + " AS " + body;
    }
    case Kind::kCreateIndex: {
      const auto& s = static_cast<const ast::CreateIndexStatement&>(stmt);
      return std::string("CREATE ") + (s.ordered ? "ORDERED " : "") +
             "INDEX ON " + s.table + "(" + s.column + ")";
    }
    case Kind::kInsert: {
      const auto& s = static_cast<const ast::InsertStatement&>(stmt);
      // One `?` per column of the first row; the row count is elided so a
      // bulk INSERT keeps one shape regardless of batch size.
      size_t arity = s.rows.empty() ? 0 : s.rows.front().size();
      std::string out = "INSERT INTO " + s.table + " VALUES (";
      for (size_t i = 0; i < arity; ++i) {
        if (i > 0) out += ", ";
        out += "?";
      }
      return out + ")";
    }
    case Kind::kUpdate: {
      const auto& s = static_cast<const ast::UpdateStatement&>(stmt);
      std::string out = "UPDATE " + s.table + " SET ";
      std::vector<std::string> parts;
      for (const auto& [col, expr] : s.assignments) {
        parts.push_back(col + " = " + NormExpr(*expr));
      }
      out += Join(parts, ", ");
      if (s.where) out += " WHERE " + NormExpr(*s.where);
      return out;
    }
    case Kind::kDelete: {
      const auto& s = static_cast<const ast::DeleteStatement&>(stmt);
      std::string out = "DELETE FROM " + s.table;
      if (s.where) out += " WHERE " + NormExpr(*s.where);
      return out;
    }
    case Kind::kDropTable:
      return "DROP TABLE " + static_cast<const ast::DropStatement&>(stmt).name;
    case Kind::kDropView:
      return "DROP VIEW " + static_cast<const ast::DropStatement&>(stmt).name;
    case Kind::kMaterialize:
      return "MATERIALIZE " +
             static_cast<const ast::MaterializeStatement&>(stmt).name;
    case Kind::kDematerialize:
      return "DEMATERIALIZE " +
             static_cast<const ast::MaterializeStatement&>(stmt).name;
  }
  return "?";
}

Fingerprint Finish(std::string text) {
  Fingerprint fp;
  fp.digest = FingerprintHash(text);
  fp.text = std::move(text);
  return fp;
}

}  // namespace

uint64_t FingerprintHash(const std::string& s) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit offset basis
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Fingerprint FingerprintSelect(const ast::SelectStmt& select) {
  return Finish(NormSelect(select));
}

Fingerprint FingerprintXnf(const ast::XnfQuery& query) {
  return Finish(NormXnf(query));
}

Fingerprint FingerprintStatement(const ast::Statement& stmt) {
  return Finish(NormStatement(stmt));
}

}  // namespace xnfdb
