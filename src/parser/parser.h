// Recursive-descent parser for the SQL/XNF dialect (grammar in ast.h).

#ifndef XNFDB_PARSER_PARSER_H_
#define XNFDB_PARSER_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"

namespace xnfdb {

// Parses a single statement (trailing ';' optional).
Result<ast::StatementPtr> ParseStatement(const std::string& sql);

// Parses a ';'-separated script.
Result<std::vector<ast::StatementPtr>> ParseScript(const std::string& sql);

// Parses exactly one SELECT query.
Result<std::unique_ptr<ast::SelectStmt>> ParseSelectQuery(
    const std::string& sql);

// Parses exactly one XNF (OUT OF ... TAKE ...) query.
Result<std::unique_ptr<ast::XnfQuery>> ParseXnfQuery(const std::string& sql);

}  // namespace xnfdb

#endif  // XNFDB_PARSER_PARSER_H_
