#include "parser/ast.h"

#include <cassert>

#include "common/str_util.h"

namespace xnfdb {
namespace ast {

Exists::Exists(std::unique_ptr<SelectStmt> subquery)
    : Expr(Kind::kExists), subquery(std::move(subquery)) {}
Exists::~Exists() = default;

std::string Exists::ToString() const {
  return "EXISTS (" + subquery->ToString() + ")";
}

InSubquery::InSubquery(ExprPtr operand, std::unique_ptr<SelectStmt> subquery,
                       bool negated)
    : Expr(Kind::kInSubquery),
      operand(std::move(operand)),
      subquery(std::move(subquery)),
      negated(negated) {}
InSubquery::~InSubquery() = default;

std::string InSubquery::ToString() const {
  return operand->ToString() + (negated ? " NOT IN (" : " IN (") +
         subquery->ToString() + ")";
}

ExprPtr CloneExpr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return std::make_unique<Literal>(static_cast<const Literal&>(e).value);
    case Expr::Kind::kColumnRef: {
      const auto& c = static_cast<const ColumnRef&>(e);
      return std::make_unique<ColumnRef>(c.qualifier, c.column);
    }
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const Binary&>(e);
      return std::make_unique<Binary>(b.op, CloneExpr(*b.lhs),
                                      CloneExpr(*b.rhs));
    }
    case Expr::Kind::kUnary: {
      const auto& u = static_cast<const Unary&>(e);
      return std::make_unique<Unary>(u.op, CloneExpr(*u.operand));
    }
    case Expr::Kind::kExists: {
      const auto& x = static_cast<const Exists&>(e);
      return std::make_unique<Exists>(CloneSelect(*x.subquery));
    }
    case Expr::Kind::kInSubquery: {
      const auto& in = static_cast<const InSubquery&>(e);
      return std::make_unique<InSubquery>(CloneExpr(*in.operand),
                                          CloneSelect(*in.subquery),
                                          in.negated);
    }
    case Expr::Kind::kLike: {
      const auto& l = static_cast<const Like&>(e);
      return std::make_unique<Like>(CloneExpr(*l.operand), l.pattern,
                                    l.negated);
    }
    case Expr::Kind::kFuncCall: {
      const auto& f = static_cast<const FuncCall&>(e);
      std::vector<ExprPtr> args;
      for (const ExprPtr& a : f.args) args.push_back(CloneExpr(*a));
      return std::make_unique<FuncCall>(f.name, std::move(args));
    }
  }
  assert(false && "unknown Expr kind");
  return nullptr;
}

namespace {

TableRef CloneTableRef(const TableRef& t) {
  TableRef out;
  out.table = t.table;
  out.alias = t.alias;
  if (t.subquery) out.subquery = CloneSelect(*t.subquery);
  return out;
}

}  // namespace

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& s) {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = s.distinct;
  for (const SelectItem& item : s.items) {
    SelectItem copy;
    copy.alias = item.alias;
    copy.is_star = item.is_star;
    copy.star_qualifier = item.star_qualifier;
    if (item.expr) copy.expr = CloneExpr(*item.expr);
    out->items.push_back(std::move(copy));
  }
  for (const TableRef& t : s.from) out->from.push_back(CloneTableRef(t));
  if (s.where) out->where = CloneExpr(*s.where);
  for (const ExprPtr& g : s.group_by) out->group_by.push_back(CloneExpr(*g));
  if (s.having) out->having = CloneExpr(*s.having);
  for (const OrderItem& o : s.order_by) {
    OrderItem copy;
    copy.expr = CloneExpr(*o.expr);
    copy.descending = o.descending;
    out->order_by.push_back(std::move(copy));
  }
  out->limit = s.limit;
  out->offset = s.offset;
  out->union_all = s.union_all;
  if (s.union_next) out->union_next = CloneSelect(*s.union_next);
  return out;
}

std::unique_ptr<XnfQuery> CloneXnf(const XnfQuery& q) {
  auto out = std::make_unique<XnfQuery>();
  out->take_all = q.take_all;
  out->take = q.take;
  for (const XnfDef& def : q.defs) {
    XnfDef copy;
    copy.name = def.name;
    copy.kind = def.kind;
    copy.free_reachability = def.free_reachability;
    copy.base_table = def.base_table;
    copy.view_ref = def.view_ref;
    copy.view_component = def.view_component;
    if (def.select) copy.select = CloneSelect(*def.select);
    copy.relate.parent = def.relate.parent;
    copy.relate.role = def.relate.role;
    copy.relate.children = def.relate.children;
    for (const TableRef& t : def.relate.using_tables) {
      copy.relate.using_tables.push_back(CloneTableRef(t));
    }
    if (def.relate.where) copy.relate.where = CloneExpr(*def.relate.where);
    out->defs.push_back(std::move(copy));
  }
  return out;
}

std::string SelectStmt::ToString() const {
  std::string s = "SELECT ";
  if (distinct) s += "DISTINCT ";
  std::vector<std::string> parts;
  for (const SelectItem& item : items) {
    if (item.is_star) {
      parts.push_back(item.star_qualifier.empty()
                          ? "*"
                          : item.star_qualifier + ".*");
    } else {
      std::string p = item.expr->ToString();
      if (!item.alias.empty()) p += " AS " + item.alias;
      parts.push_back(std::move(p));
    }
  }
  s += Join(parts, ", ");
  if (!from.empty()) {
    s += " FROM ";
    parts.clear();
    for (const TableRef& t : from) {
      std::string p =
          t.subquery ? "(" + t.subquery->ToString() + ")" : t.table;
      if (!t.alias.empty()) p += " " + t.alias;
      parts.push_back(std::move(p));
    }
    s += Join(parts, ", ");
  }
  if (where) s += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    parts.clear();
    for (const ExprPtr& g : group_by) parts.push_back(g->ToString());
    s += " GROUP BY " + Join(parts, ", ");
  }
  if (having) s += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    parts.clear();
    for (const OrderItem& o : order_by) {
      parts.push_back(o.expr->ToString() + (o.descending ? " DESC" : ""));
    }
    s += " ORDER BY " + Join(parts, ", ");
  }
  if (limit >= 0) s += " LIMIT " + std::to_string(limit);
  if (offset > 0) s += " OFFSET " + std::to_string(offset);
  if (union_next) {
    s += union_all ? " UNION ALL " : " UNION ";
    s += union_next->ToString();
  }
  return s;
}

std::string XnfQuery::ToString() const {
  std::string s = "OUT OF ";
  std::vector<std::string> parts;
  for (const XnfDef& def : defs) {
    std::string p = def.name + " AS ";
    if (def.free_reachability) p += "FREE ";
    if (def.kind == XnfDef::Kind::kTable) {
      if (def.select) {
        p += "(" + def.select->ToString() + ")";
      } else if (!def.view_ref.empty()) {
        p += def.view_ref + "." + def.view_component;
      } else {
        p += def.base_table;
      }
    } else {
      p += "(RELATE " + def.relate.parent;
      if (!def.relate.role.empty()) p += " VIA " + def.relate.role;
      for (const std::string& c : def.relate.children) p += ", " + c;
      if (!def.relate.using_tables.empty()) {
        p += " USING ";
        std::vector<std::string> us;
        for (const TableRef& t : def.relate.using_tables) {
          us.push_back(t.alias.empty() ? t.table : t.table + " " + t.alias);
        }
        p += Join(us, ", ");
      }
      if (def.relate.where) p += " WHERE " + def.relate.where->ToString();
      p += ")";
    }
    parts.push_back(std::move(p));
  }
  s += Join(parts, ", ");
  s += " TAKE ";
  if (take_all) {
    s += "*";
  } else {
    parts.clear();
    for (const TakeItem& t : take) {
      std::string p = t.name;
      if (!t.columns.empty()) p += "(" + Join(t.columns, ", ") + ")";
      parts.push_back(std::move(p));
    }
    s += Join(parts, ", ");
  }
  return s;
}

}  // namespace ast
}  // namespace xnfdb
