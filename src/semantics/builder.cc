#include "semantics/builder.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "parser/parser.h"

namespace xnfdb {

namespace {

using qgm::AddQuant;
using qgm::Box;
using qgm::BoxKind;
using qgm::ExistsGroup;
using qgm::Expr;
using qgm::ExprPtr;
using qgm::HeadColumn;
using qgm::QuantKind;
using qgm::Quantifier;
using qgm::QueryGraph;
using qgm::XnfComponent;

// One visible range variable during name resolution.
struct Binding {
  std::string name;  // binding name (alias or table/component name), upper
  int quant_id = -1;
};

// Lexical scope chain for correlated subqueries.
struct Scope {
  std::vector<Binding> bindings;
  const Scope* parent = nullptr;
};

namespace {

bool ContainsAgg(const Expr& e) {
  if (e.kind == Expr::Kind::kAgg) return true;
  if (e.lhs && ContainsAgg(*e.lhs)) return true;
  if (e.rhs && ContainsAgg(*e.rhs)) return true;
  return false;
}

// Splits an AST predicate into its top-level conjuncts.
void SplitAstConjuncts(const ast::Expr* e,
                       std::vector<const ast::Expr*>* out) {
  if (e->kind == ast::Expr::Kind::kBinary) {
    const auto& b = static_cast<const ast::Binary&>(*e);
    if (b.op == "AND") {
      SplitAstConjuncts(b.lhs.get(), out);
      SplitAstConjuncts(b.rhs.get(), out);
      return;
    }
  }
  out->push_back(e);
}

bool IsSubqueryNode(const ast::Expr& e) {
  return e.kind == ast::Expr::Kind::kExists ||
         e.kind == ast::Expr::Kind::kInSubquery;
}

// True if `e` contains an EXISTS/IN subquery anywhere.
bool ContainsSubquery(const ast::Expr& e) {
  if (IsSubqueryNode(e)) return true;
  switch (e.kind) {
    case ast::Expr::Kind::kBinary: {
      const auto& b = static_cast<const ast::Binary&>(e);
      return ContainsSubquery(*b.lhs) || ContainsSubquery(*b.rhs);
    }
    case ast::Expr::Kind::kUnary:
      return ContainsSubquery(
          *static_cast<const ast::Unary&>(e).operand);
    case ast::Expr::Kind::kLike:
      return ContainsSubquery(*static_cast<const ast::Like&>(e).operand);
    case ast::Expr::Kind::kFuncCall: {
      const auto& f = static_cast<const ast::FuncCall&>(e);
      for (const ast::ExprPtr& a : f.args) {
        if (ContainsSubquery(*a)) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

// Collects the leaves of an OR-chain; returns true if every leaf is an
// EXISTS/IN subquery (the disjunctive-reachability shape).
bool CollectOrOfSubqueries(const ast::Expr& e,
                           std::vector<const ast::Expr*>* leaves) {
  if (e.kind == ast::Expr::Kind::kBinary) {
    const auto& b = static_cast<const ast::Binary&>(e);
    if (b.op == "OR") {
      return CollectOrOfSubqueries(*b.lhs, leaves) &&
             CollectOrOfSubqueries(*b.rhs, leaves);
    }
  }
  if (IsSubqueryNode(e)) {
    leaves->push_back(&e);
    return true;
  }
  return false;
}

}  // namespace

// Builds QGM boxes from AST queries against one catalog.
class Builder {
 public:
  explicit Builder(const Catalog& catalog, QueryGraph* graph)
      : catalog_(catalog), graph_(graph) {}

  // Builds a Select box for `select`, resolving correlated names through
  // `outer` (may be null). Returns the new box.
  // `allow_hidden_order` permits appending hidden head columns for ORDER BY
  // expressions that are not in the select list (top-level queries only —
  // nested boxes must keep their declared arity). `visible_head` receives
  // the number of user-visible head columns when non-null.
  Result<Box*> BuildSelectBox(const ast::SelectStmt& select,
                              const Scope* outer, const std::string& label,
                              bool allow_hidden_order = false,
                              size_t* visible_head = nullptr);

  Result<Box*> BaseTableBox(const std::string& table_name);

  const Catalog& catalog() const { return catalog_; }
  QueryGraph* graph() { return graph_; }

  // Resolves `qualifier.column` in `scope` (searching outward). Returns the
  // (quant_id, column index) pair.
  Result<std::pair<int, int>> ResolveColumn(const Scope& scope,
                                            const std::string& qualifier,
                                            const std::string& column);

  // Translates an AST expression into a QGM expression. `box` is the box
  // under construction (exists groups are appended to it).
  Result<ExprPtr> TranslateExpr(const ast::Expr& e, const Scope& scope,
                                Box* box);

  // Builds the XNF operator box for `query` (paper Sect. 4.1 phases).
  // A non-empty `prefix` marks an imported sub-view: component names are
  // prefixed and no TAKE processing happens.
  Result<Box*> BuildXnfOperator(const ast::XnfQuery& query,
                                const std::string& prefix);

  // Compiles the stored XNF view `view_name` into this graph (memoized).
  Result<Box*> ImportXnfView(const std::string& view_name);

 private:
  // Handles EXISTS / IN subqueries: builds the subquery box, adds an
  // exists-group to `box`, and returns the literal TRUE placeholder that
  // stands for the (already registered) group in the conjunct list.
  Result<ExprPtr> TranslateExists(const ast::SelectStmt& sub,
                                  const ast::Expr* in_operand, bool negated,
                                  const Scope& scope, Box* box);

  // Expands a FROM item into a quantifier over the right box.
  Result<Binding> BuildFromItem(const ast::TableRef& ref, const Scope* outer,
                                Box* box);

  Status ExpandStar(const std::string& qualifier, const Scope& scope, Box* box);

  const Catalog& catalog_;
  QueryGraph* graph_;
  int view_depth_ = 0;
  // One box per referenced SQL view: several references within one query
  // share the expansion (the Fig. 6 common-subexpression granularity; the
  // planner spools multi-consumer boxes).
  std::map<std::string, Box*> view_cache_;
  // One XNF operator box per imported XNF view (CO composition).
  std::map<std::string, Box*> imported_xnf_;
};

Result<Box*> Builder::BaseTableBox(const std::string& table_name) {
  // Reuse a single base-table box per table (common subexpression at the
  // leaf level; also keeps Fig. 4-style rendering compact).
  for (size_t i = 0; i < graph_->box_count(); ++i) {
    Box* b = graph_->box(static_cast<int>(i));
    if (!graph_->IsDead(b->id) && b->kind == BoxKind::kBaseTable &&
        IdentEquals(b->table_name, table_name)) {
      return b;
    }
  }
  Result<Table*> table = catalog_.GetTable(table_name);
  if (!table.ok()) {
    // Virtual system tables (sys$ views) resolve after base tables; the
    // planner compiles their boxes into VirtualScanOp instead of ScanOp.
    if (const VirtualTableProvider* v = catalog_.GetVirtualTable(table_name)) {
      Box* b = graph_->NewBox(BoxKind::kBaseTable, v->name());
      b->table_name = v->name();
      b->base_schema = v->schema();
      return b;
    }
    return table.status();
  }
  Box* b = graph_->NewBox(BoxKind::kBaseTable, table.value()->name());
  b->table_name = table.value()->name();
  b->base_schema = table.value()->schema();
  return b;
}

Result<std::pair<int, int>> Builder::ResolveColumn(const Scope& scope,
                                                   const std::string& qualifier,
                                                   const std::string& column) {
  for (const Scope* s = &scope; s != nullptr; s = s->parent) {
    if (!qualifier.empty()) {
      for (const Binding& b : s->bindings) {
        if (!IdentEquals(b.name, qualifier)) continue;
        const Box* ranged = graph_->RangedBox(b.quant_id);
        if (ranged == nullptr) {
          return Status::Internal("binding without ranged box");
        }
        for (size_t i = 0; i < ranged->HeadArity(); ++i) {
          if (IdentEquals(ranged->HeadName(i), column)) {
            return std::make_pair(b.quant_id, static_cast<int>(i));
          }
        }
        return Status::SemanticError("column '" + column +
                                     "' not found in range variable '" +
                                     qualifier + "'");
      }
      continue;  // qualifier not in this scope level; look outward
    }
    // Unqualified: must be unique within this scope level.
    int found_q = -1, found_c = -1;
    for (const Binding& b : s->bindings) {
      const Box* ranged = graph_->RangedBox(b.quant_id);
      if (ranged == nullptr) continue;
      for (size_t i = 0; i < ranged->HeadArity(); ++i) {
        if (IdentEquals(ranged->HeadName(i), column)) {
          if (found_q >= 0) {
            return Status::SemanticError("column '" + column +
                                         "' is ambiguous");
          }
          found_q = b.quant_id;
          found_c = static_cast<int>(i);
        }
      }
    }
    if (found_q >= 0) return std::make_pair(found_q, found_c);
  }
  return Status::SemanticError(
      "column '" + (qualifier.empty() ? column : qualifier + "." + column) +
      "' cannot be resolved");
}

Result<Binding> Builder::BuildFromItem(const ast::TableRef& ref,
                                       const Scope* outer, Box* box) {
  Box* ranged = nullptr;
  if (ref.subquery != nullptr) {
    XNFDB_ASSIGN_OR_RETURN(ranged,
                           BuildSelectBox(*ref.subquery, outer, ref.alias));
  } else if (catalog_.HasView(ref.table)) {
    XNFDB_ASSIGN_OR_RETURN(const ViewDef* view, catalog_.GetView(ref.table));
    if (view->is_xnf) {
      return Status::SemanticError(
          "XNF view " + view->name +
          " cannot be used as a plain table; query it with OUT OF / the "
          "XNF API");
    }
    auto cached = view_cache_.find(view->name);
    if (cached != view_cache_.end()) {
      ranged = cached->second;
    } else {
      if (++view_depth_ > 16) {
        return Status::SemanticError("view expansion too deep (cycle?)");
      }
      XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<ast::SelectStmt> parsed,
                             ParseSelectQuery(view->definition));
      XNFDB_ASSIGN_OR_RETURN(ranged, BuildSelectBox(*parsed, nullptr,
                                                    ToUpperIdent(ref.table)));
      --view_depth_;
      view_cache_[view->name] = ranged;
    }
  } else {
    XNFDB_ASSIGN_OR_RETURN(ranged, BaseTableBox(ref.table));
  }
  Binding binding;
  binding.name = ToUpperIdent(ref.BindingName());
  binding.quant_id = AddQuant(graph_, box, QuantKind::kForeach, ranged->id,
                              binding.name);
  return binding;
}

Status Builder::ExpandStar(const std::string& qualifier, const Scope& scope,
                           Box* box) {
  bool matched = false;
  for (const Binding& b : scope.bindings) {
    if (!qualifier.empty() && !IdentEquals(b.name, qualifier)) continue;
    matched = true;
    const Box* ranged = graph_->RangedBox(b.quant_id);
    for (size_t i = 0; i < ranged->HeadArity(); ++i) {
      HeadColumn h;
      h.name = ranged->HeadName(i);
      h.expr = Expr::MakeColRef(b.quant_id, static_cast<int>(i));
      box->head.push_back(std::move(h));
    }
  }
  if (!matched) {
    return Status::SemanticError("range variable '" + qualifier +
                                 "' not found for '*' expansion");
  }
  return Status::Ok();
}

Result<ExprPtr> Builder::TranslateExists(const ast::SelectStmt& sub,
                                         const ast::Expr* in_operand,
                                         bool negated, const Scope& scope,
                                         Box* box) {
  // `negated` yields an anti-group (NOT EXISTS / NOT IN). Note a documented
  // deviation for NOT IN: SQL's three-valued semantics make `x NOT IN (set
  // containing NULL)` unknown; here NULL subquery items simply never match,
  // so the row passes.
  // Constructs the subquery does not support are rejected explicitly
  // rather than silently dropped.
  if (sub.union_next != nullptr) {
    return Status::Unsupported("UNION inside an EXISTS/IN subquery");
  }
  if (!sub.group_by.empty() || sub.having != nullptr) {
    return Status::Unsupported(
        "GROUP BY/HAVING inside an EXISTS/IN subquery");
  }
  if (sub.limit >= 0 || sub.offset > 0) {
    return Status::Unsupported("LIMIT inside an EXISTS/IN subquery");
  }
  // Build the subquery's box with its own scope chained to the outer one.
  Box* sub_box = graph_->NewBox(BoxKind::kSelect, "subquery");
  Scope inner;
  inner.parent = &scope;
  for (const ast::TableRef& ref : sub.from) {
    XNFDB_ASSIGN_OR_RETURN(Binding b, BuildFromItem(ref, &scope, sub_box));
    inner.bindings.push_back(std::move(b));
  }
  std::set<int> inner_quants;
  for (const Binding& b : inner.bindings) inner_quants.insert(b.quant_id);

  // Conjuncts referencing only inner quantifiers stay in the subquery box;
  // correlated conjuncts move to the outer exists-group with inner column
  // references rerouted through the subquery head.
  std::vector<ExprPtr> local, correlated;
  if (sub.where != nullptr) {
    // Nested subqueries are allowed only in conjunct position (they become
    // conjunctive groups of the subquery box via TranslateExpr below).
    std::vector<const ast::Expr*> sub_conjuncts;
    SplitAstConjuncts(sub.where.get(), &sub_conjuncts);
    for (const ast::Expr* c : sub_conjuncts) {
      if (ContainsSubquery(*c) && !IsSubqueryNode(*c)) {
        return Status::Unsupported(
            "subquery nested inside an expression: " + c->ToString());
      }
    }
    XNFDB_ASSIGN_OR_RETURN(ExprPtr w,
                           TranslateExpr(*sub.where, inner, sub_box));
    std::vector<ExprPtr> conjuncts;
    qgm::SplitConjuncts(std::move(w), &conjuncts);
    for (ExprPtr& c : conjuncts) {
      std::vector<int> used;
      c->CollectQuants(&used);
      bool is_local = true;
      for (int q : used) {
        if (inner_quants.count(q) == 0) is_local = false;
      }
      (is_local ? local : correlated).push_back(std::move(c));
    }
  }
  for (ExprPtr& c : local) sub_box->preds.push_back(std::move(c));

  // The subquery head exposes every inner column the correlated predicates
  // (and the IN operand comparison) need.
  //
  // (inner quant, column) -> head index
  std::map<std::pair<int, int>, int> exposed;
  auto expose = [&](int q, int col) -> int {
    auto key = std::make_pair(q, col);
    auto it = exposed.find(key);
    if (it != exposed.end()) return it->second;
    HeadColumn h;
    const Box* ranged = graph_->RangedBox(q);
    h.name = ranged != nullptr ? ranged->HeadName(col)
                               : "C" + std::to_string(col);
    h.expr = Expr::MakeColRef(q, col);
    sub_box->head.push_back(std::move(h));
    int idx = static_cast<int>(sub_box->head.size()) - 1;
    exposed[key] = idx;
    return idx;
  };

  int in_head_col = -1;
  if (in_operand != nullptr) {
    // `x IN (SELECT item FROM ...)`: expose the single select item.
    if (sub.items.size() != 1 || sub.items[0].is_star) {
      return Status::SemanticError(
          "IN subquery must have exactly one select item");
    }
    XNFDB_ASSIGN_OR_RETURN(ExprPtr item,
                           TranslateExpr(*sub.items[0].expr, inner, sub_box));
    HeadColumn h;
    h.name = "IN_ITEM";
    h.expr = std::move(item);
    sub_box->head.push_back(std::move(h));
    in_head_col = static_cast<int>(sub_box->head.size()) - 1;
  }

  // Reroute correlated predicates: inner-quant colrefs become colrefs to the
  // new E-quantifier over sub_box.
  ExistsGroup group;
  group.negated = negated;
  int equant =
      AddQuant(graph_, box, QuantKind::kExists, sub_box->id, "exists");
  // AddQuant appends as a plain quantifier; move it into the group.
  box->quants.back().kind = QuantKind::kExists;
  group.quant_ids.push_back(equant);

  // Rewrites colrefs of inner quants inside `e` to go through sub_box head.
  std::function<Status(Expr*)> reroute = [&](Expr* e) -> Status {
    if (e->kind == Expr::Kind::kColRef && inner_quants.count(e->quant_id)) {
      int head_idx = expose(e->quant_id, e->column);
      e->quant_id = equant;
      e->column = head_idx;
      return Status::Ok();
    }
    if (e->lhs) XNFDB_RETURN_IF_ERROR(reroute(e->lhs.get()));
    if (e->rhs) XNFDB_RETURN_IF_ERROR(reroute(e->rhs.get()));
    return Status::Ok();
  };
  for (ExprPtr& c : correlated) {
    XNFDB_RETURN_IF_ERROR(reroute(c.get()));
    group.preds.push_back(std::move(c));
  }
  if (in_operand != nullptr) {
    XNFDB_ASSIGN_OR_RETURN(ExprPtr op_expr,
                           TranslateExpr(*in_operand, scope, box));
    group.preds.push_back(Expr::MakeBinary(
        "=", std::move(op_expr), Expr::MakeColRef(equant, in_head_col)));
  }
  // A subquery without head columns still needs one for execution.
  if (sub_box->head.empty()) {
    HeadColumn h;
    h.name = "ONE";
    h.expr = Expr::MakeLiteral(Value(static_cast<int64_t>(1)));
    sub_box->head.push_back(std::move(h));
  }
  box->exists_groups.push_back(std::move(group));
  // The conjunct itself is absorbed into the group; stand in with TRUE.
  return Expr::MakeLiteral(Value(true));
}

Result<ExprPtr> Builder::TranslateExpr(const ast::Expr& e, const Scope& scope,
                                       Box* box) {
  switch (e.kind) {
    case ast::Expr::Kind::kLiteral:
      return Expr::MakeLiteral(static_cast<const ast::Literal&>(e).value);
    case ast::Expr::Kind::kColumnRef: {
      const auto& c = static_cast<const ast::ColumnRef&>(e);
      XNFDB_ASSIGN_OR_RETURN(auto resolved,
                             ResolveColumn(scope, c.qualifier, c.column));
      return Expr::MakeColRef(resolved.first, resolved.second);
    }
    case ast::Expr::Kind::kBinary: {
      const auto& b = static_cast<const ast::Binary&>(e);
      XNFDB_ASSIGN_OR_RETURN(ExprPtr lhs, TranslateExpr(*b.lhs, scope, box));
      XNFDB_ASSIGN_OR_RETURN(ExprPtr rhs, TranslateExpr(*b.rhs, scope, box));
      return Expr::MakeBinary(b.op, std::move(lhs), std::move(rhs));
    }
    case ast::Expr::Kind::kUnary: {
      const auto& u = static_cast<const ast::Unary&>(e);
      XNFDB_ASSIGN_OR_RETURN(ExprPtr operand,
                             TranslateExpr(*u.operand, scope, box));
      return Expr::MakeUnary(u.op, std::move(operand));
    }
    case ast::Expr::Kind::kExists: {
      const auto& x = static_cast<const ast::Exists&>(e);
      return TranslateExists(*x.subquery, nullptr, false, scope, box);
    }
    case ast::Expr::Kind::kInSubquery: {
      const auto& in = static_cast<const ast::InSubquery&>(e);
      return TranslateExists(*in.subquery, in.operand.get(), in.negated,
                             scope, box);
    }
    case ast::Expr::Kind::kLike: {
      const auto& l = static_cast<const ast::Like&>(e);
      XNFDB_ASSIGN_OR_RETURN(ExprPtr operand,
                             TranslateExpr(*l.operand, scope, box));
      return Expr::MakeLike(std::move(operand), l.pattern, l.negated);
    }
    case ast::Expr::Kind::kFuncCall: {
      const auto& f = static_cast<const ast::FuncCall&>(e);
      std::vector<ExprPtr> args;
      for (const ast::ExprPtr& a : f.args) {
        XNFDB_ASSIGN_OR_RETURN(ExprPtr arg, TranslateExpr(*a, scope, box));
        args.push_back(std::move(arg));
      }
      if (f.name == "COUNT" || f.name == "SUM" || f.name == "MIN" ||
          f.name == "MAX" || f.name == "AVG") {
        if (args.size() > 1) {
          return Status::SemanticError(f.name + " takes one argument");
        }
        return Expr::MakeAgg(
            f.name, args.empty() ? nullptr : std::move(args[0]));
      }
      // Scalar functions.
      static const std::map<std::string, int> kScalarArity = {
          {"UPPER", 1}, {"LOWER", 1}, {"LENGTH", 1}, {"ABS", 1},
          {"ROUND", 1}, {"MOD", 2},   {"CONCAT", 2},
      };
      auto it = kScalarArity.find(f.name);
      if (it == kScalarArity.end()) {
        return Status::SemanticError("unknown function " + f.name);
      }
      if (static_cast<int>(args.size()) != it->second) {
        return Status::SemanticError(f.name + " takes " +
                                     std::to_string(it->second) +
                                     " argument(s)");
      }
      return Expr::MakeFunc(f.name, std::move(args[0]),
                            args.size() > 1 ? std::move(args[1]) : nullptr);
    }
  }
  return Status::Internal("unknown AST expression kind");
}


Result<Box*> Builder::BuildSelectBox(const ast::SelectStmt& select,
                                     const Scope* outer,
                                     const std::string& label,
                                     bool allow_hidden_order,
                                     size_t* visible_head) {
  // UNION chain: build each member box, combine under a Union box, and
  // wrap in an identity Select carrying the chain's ORDER BY / LIMIT.
  // Members keep set semantics unless *every* link is UNION ALL.
  if (select.union_next != nullptr) {
    if (outer != nullptr) {
      return Status::Unsupported("UNION inside a correlated subquery");
    }
    bool all_links_all = true;
    std::vector<int> inputs;
    for (const ast::SelectStmt* member = &select; member != nullptr;
         member = member->union_next.get()) {
      if (member->union_next != nullptr && !member->union_all) {
        all_links_all = false;
      }
      std::unique_ptr<ast::SelectStmt> clone = ast::CloneSelect(*member);
      clone->union_next = nullptr;
      clone->order_by.clear();
      clone->limit = -1;
      clone->offset = 0;
      XNFDB_ASSIGN_OR_RETURN(Box * m,
                             BuildSelectBox(*clone, nullptr, label));
      inputs.push_back(m->id);
    }
    Box* u = graph_->NewBox(BoxKind::kUnion, label);
    u->union_inputs = inputs;
    u->distinct = !all_links_all;
    const Box* first = graph_->box(inputs[0]);
    for (size_t m = 1; m < inputs.size(); ++m) {
      if (graph_->box(inputs[m])->HeadArity() != first->HeadArity()) {
        return Status::SemanticError(
            "UNION members must have the same number of columns");
      }
    }
    for (size_t i = 0; i < first->HeadArity(); ++i) {
      HeadColumn h;
      h.name = first->HeadName(i);
      u->head.push_back(std::move(h));
    }
    Box* wrapper = graph_->NewBox(BoxKind::kSelect, label);
    int uq = AddQuant(graph_, wrapper, QuantKind::kForeach, u->id,
                      ToUpperIdent(label.empty() ? "U" : label));
    for (size_t i = 0; i < first->HeadArity(); ++i) {
      HeadColumn h;
      h.name = first->HeadName(i);
      h.expr = Expr::MakeColRef(uq, static_cast<int>(i));
      wrapper->head.push_back(std::move(h));
    }
    if (visible_head != nullptr) *visible_head = wrapper->head.size();
    for (const ast::OrderItem& o : select.order_by) {
      int idx = -1;
      if (o.expr->kind == ast::Expr::Kind::kLiteral) {
        const Value& v = static_cast<const ast::Literal&>(*o.expr).value;
        if (v.type() == DataType::kInt) idx = static_cast<int>(v.AsInt()) - 1;
      } else if (o.expr->kind == ast::Expr::Kind::kColumnRef) {
        const auto& cr = static_cast<const ast::ColumnRef&>(*o.expr);
        if (cr.qualifier.empty()) {
          for (size_t i = 0; i < wrapper->head.size(); ++i) {
            if (IdentEquals(wrapper->head[i].name, cr.column)) {
              idx = static_cast<int>(i);
              break;
            }
          }
        }
      }
      if (idx < 0 || static_cast<size_t>(idx) >= wrapper->head.size()) {
        return Status::SemanticError(
            "ORDER BY of a UNION must name an output column");
      }
      wrapper->order_by.emplace_back(idx, o.descending);
    }
    wrapper->limit = select.limit;
    wrapper->offset = select.offset;
    return wrapper;
  }

  Box* box = graph_->NewBox(BoxKind::kSelect, label);
  Scope scope;
  scope.parent = outer;
  for (const ast::TableRef& ref : select.from) {
    // Duplicate binding names are a semantic error.
    for (const Binding& b : scope.bindings) {
      if (IdentEquals(b.name, ref.BindingName())) {
        return Status::SemanticError("duplicate range variable '" +
                                     ref.BindingName() + "'");
      }
    }
    XNFDB_ASSIGN_OR_RETURN(Binding b, BuildFromItem(ref, outer, box));
    scope.bindings.push_back(std::move(b));
  }

  if (select.where != nullptr) {
    // EXISTS/IN subqueries are only representable at conjunct level (each
    // becomes an existential group of the box) or as one conjunct that is
    // an OR of subqueries (disjunctive groups, the reachability shape of
    // Sect. 4.2). Anywhere else their semantics cannot be expressed by the
    // box model, so they are rejected rather than silently mis-evaluated.
    std::vector<const ast::Expr*> conjuncts;
    SplitAstConjuncts(select.where.get(), &conjuncts);
    bool has_conjunctive_group = false;
    bool has_disjunctive_group = false;
    for (const ast::Expr* c : conjuncts) {
      if (c->kind == ast::Expr::Kind::kExists) {
        const auto& x = static_cast<const ast::Exists&>(*c);
        XNFDB_RETURN_IF_ERROR(
            TranslateExists(*x.subquery, nullptr, false, scope, box)
                .status());
        has_conjunctive_group = true;
        continue;
      }
      if (c->kind == ast::Expr::Kind::kInSubquery) {
        const auto& in = static_cast<const ast::InSubquery&>(*c);
        XNFDB_RETURN_IF_ERROR(
            TranslateExists(*in.subquery, in.operand.get(), in.negated,
                            scope, box)
                .status());
        has_conjunctive_group = true;
        continue;
      }
      // NOT EXISTS (...) / NOT (x IN (...)) as a conjunct: an anti-group.
      if (c->kind == ast::Expr::Kind::kUnary &&
          static_cast<const ast::Unary&>(*c).op == "NOT" &&
          IsSubqueryNode(*static_cast<const ast::Unary&>(*c).operand)) {
        const ast::Expr& inner = *static_cast<const ast::Unary&>(*c).operand;
        if (inner.kind == ast::Expr::Kind::kExists) {
          const auto& x = static_cast<const ast::Exists&>(inner);
          XNFDB_RETURN_IF_ERROR(
              TranslateExists(*x.subquery, nullptr, true, scope, box)
                  .status());
        } else {
          const auto& in = static_cast<const ast::InSubquery&>(inner);
          XNFDB_RETURN_IF_ERROR(
              TranslateExists(*in.subquery, in.operand.get(), !in.negated,
                              scope, box)
                  .status());
        }
        has_conjunctive_group = true;
        continue;
      }
      std::vector<const ast::Expr*> or_leaves;
      if (c->kind == ast::Expr::Kind::kBinary &&
          static_cast<const ast::Binary&>(*c).op == "OR" &&
          CollectOrOfSubqueries(*c, &or_leaves)) {
        for (const ast::Expr* leaf : or_leaves) {
          if (leaf->kind == ast::Expr::Kind::kExists) {
            const auto& x = static_cast<const ast::Exists&>(*leaf);
            XNFDB_RETURN_IF_ERROR(
                TranslateExists(*x.subquery, nullptr, false, scope, box)
                    .status());
          } else {
            const auto& in = static_cast<const ast::InSubquery&>(*leaf);
            XNFDB_RETURN_IF_ERROR(
                TranslateExists(*in.subquery, in.operand.get(), in.negated,
                                scope, box)
                    .status());
          }
        }
        has_disjunctive_group = true;
        continue;
      }
      if (ContainsSubquery(*c)) {
        return Status::Unsupported(
            "EXISTS/IN subqueries must appear as top-level conjuncts (or a "
            "single OR of subqueries): " +
            c->ToString());
      }
      XNFDB_ASSIGN_OR_RETURN(ExprPtr pred, TranslateExpr(*c, scope, box));
      box->preds.push_back(std::move(pred));
    }
    if (has_conjunctive_group && has_disjunctive_group) {
      return Status::Unsupported(
          "mixing conjunctive EXISTS with OR-of-EXISTS in one WHERE clause");
    }
    box->groups_disjunctive = has_disjunctive_group;
  }

  // Select list.
  for (const ast::SelectItem& item : select.items) {
    if (item.is_star) {
      XNFDB_RETURN_IF_ERROR(ExpandStar(item.star_qualifier, scope, box));
      continue;
    }
    XNFDB_ASSIGN_OR_RETURN(ExprPtr ex, TranslateExpr(*item.expr, scope, box));
    HeadColumn h;
    if (!item.alias.empty()) {
      h.name = ToUpperIdent(item.alias);
    } else if (item.expr->kind == ast::Expr::Kind::kColumnRef) {
      h.name = ToUpperIdent(
          static_cast<const ast::ColumnRef&>(*item.expr).column);
    } else {
      h.name = "C" + std::to_string(box->head.size());
    }
    h.expr = std::move(ex);
    box->head.push_back(std::move(h));
  }

  box->distinct = select.distinct;

  // Grouping / aggregation.
  for (const ast::ExprPtr& g : select.group_by) {
    XNFDB_ASSIGN_OR_RETURN(ExprPtr ex, TranslateExpr(*g, scope, box));
    box->group_by.push_back(std::move(ex));
  }
  bool has_agg = false;
  for (const HeadColumn& h : box->head) {
    if (h.expr && ContainsAgg(*h.expr)) has_agg = true;
  }
  if (has_agg || !box->group_by.empty()) {
    // Validate the restricted aggregate form: every head column is either a
    // bare aggregate or (deep-)equal to a grouping expression. We check only
    // the shallow condition (bare agg or colref also in group_by).
    for (const HeadColumn& h : box->head) {
      if (h.expr->kind == Expr::Kind::kAgg) continue;
      if (ContainsAgg(*h.expr)) {
        return Status::Unsupported(
            "aggregates nested inside expressions (use a bare aggregate)");
      }
      if (box->group_by.empty()) {
        return Status::SemanticError(
            "mixing aggregates and plain columns requires GROUP BY");
      }
    }
  }

  bool is_agg_query = has_agg || !box->group_by.empty();

  // HAVING: post-aggregation filtering (a wrapper box over the aggregating
  // box; its predicates may reference grouped output columns by name and
  // aggregates — matching select-list aggregates are reused, others become
  // hidden aggregate columns of the inner box).
  if (select.having != nullptr) {
    if (!is_agg_query) {
      return Status::SemanticError(
          "HAVING requires GROUP BY or aggregates");
    }
    Box* inner = box;
    Box* wrapper = graph_->NewBox(BoxKind::kSelect, label);
    int hq = AddQuant(graph_, wrapper, QuantKind::kForeach, inner->id,
                      ToUpperIdent(label.empty() ? "AGG" : label));
    size_t visible_cols = inner->head.size();
    for (size_t i = 0; i < visible_cols; ++i) {
      HeadColumn h;
      h.name = inner->head[i].name;
      h.expr = Expr::MakeColRef(hq, static_cast<int>(i));
      wrapper->head.push_back(std::move(h));
    }
    std::function<Result<ExprPtr>(const ast::Expr&)> translate_having =
        [&](const ast::Expr& e) -> Result<ExprPtr> {
      switch (e.kind) {
        case ast::Expr::Kind::kLiteral:
          return Expr::MakeLiteral(static_cast<const ast::Literal&>(e).value);
        case ast::Expr::Kind::kColumnRef: {
          const auto& c = static_cast<const ast::ColumnRef&>(e);
          for (size_t i = 0; i < visible_cols; ++i) {
            if (IdentEquals(inner->head[i].name, c.column)) {
              return Expr::MakeColRef(hq, static_cast<int>(i));
            }
          }
          return Status::SemanticError(
              "HAVING column '" + c.column +
              "' must name a grouped output column");
        }
        case ast::Expr::Kind::kBinary: {
          const auto& b = static_cast<const ast::Binary&>(e);
          XNFDB_ASSIGN_OR_RETURN(ExprPtr lhs, translate_having(*b.lhs));
          XNFDB_ASSIGN_OR_RETURN(ExprPtr rhs, translate_having(*b.rhs));
          return Expr::MakeBinary(b.op, std::move(lhs), std::move(rhs));
        }
        case ast::Expr::Kind::kUnary: {
          const auto& u = static_cast<const ast::Unary&>(e);
          XNFDB_ASSIGN_OR_RETURN(ExprPtr operand,
                                 translate_having(*u.operand));
          return Expr::MakeUnary(u.op, std::move(operand));
        }
        case ast::Expr::Kind::kLike: {
          const auto& l = static_cast<const ast::Like&>(e);
          XNFDB_ASSIGN_OR_RETURN(ExprPtr operand,
                                 translate_having(*l.operand));
          return Expr::MakeLike(std::move(operand), l.pattern, l.negated);
        }
        case ast::Expr::Kind::kFuncCall: {
          // Aggregates resolve against (or extend) the inner head; their
          // arguments live in the FROM scope of the inner box.
          XNFDB_ASSIGN_OR_RETURN(ExprPtr translated,
                                 TranslateExpr(e, scope, inner));
          if (translated->kind != Expr::Kind::kAgg) {
            return Status::Unsupported(
                "scalar functions of grouped columns in HAVING");
          }
          std::string rendered = translated->ToString(graph_);
          for (size_t i = 0; i < inner->head.size(); ++i) {
            if (inner->head[i].expr != nullptr &&
                inner->head[i].expr->kind == Expr::Kind::kAgg &&
                inner->head[i].expr->ToString(graph_) == rendered) {
              return Expr::MakeColRef(hq, static_cast<int>(i));
            }
          }
          HeadColumn hidden;
          hidden.name = "$HAV" + std::to_string(inner->head.size());
          hidden.expr = std::move(translated);
          inner->head.push_back(std::move(hidden));
          return Expr::MakeColRef(hq,
                                  static_cast<int>(inner->head.size()) - 1);
        }
        default:
          return Status::Unsupported("subquery in HAVING");
      }
    };
    XNFDB_ASSIGN_OR_RETURN(ExprPtr having,
                           translate_having(*select.having));
    qgm::SplitConjuncts(std::move(having), &wrapper->preds);
    box = wrapper;
  }

  // ORDER BY: resolve to head column positions. Expressions that do not
  // name a select-list column are appended as hidden head columns (only at
  // the top level, where the Top output projection hides them again).
  size_t visible = box->head.size();
  if (visible_head != nullptr) *visible_head = visible;
  for (const ast::OrderItem& o : select.order_by) {
    int idx = -1;
    if (o.expr->kind == ast::Expr::Kind::kLiteral) {
      const Value& v = static_cast<const ast::Literal&>(*o.expr).value;
      if (v.type() == DataType::kInt) idx = static_cast<int>(v.AsInt()) - 1;
      if (idx < 0 || static_cast<size_t>(idx) >= visible) {
        return Status::SemanticError("ORDER BY ordinal out of range");
      }
    } else if (o.expr->kind == ast::Expr::Kind::kColumnRef) {
      const auto& c = static_cast<const ast::ColumnRef&>(*o.expr);
      if (c.qualifier.empty()) {
        for (size_t i = 0; i < visible; ++i) {
          if (IdentEquals(box->head[i].name, c.column)) {
            idx = static_cast<int>(i);
            break;
          }
        }
      }
    }
    if (idx < 0) {
      if (!allow_hidden_order) {
        return Status::SemanticError(
            "ORDER BY item must name a select-list column");
      }
      if (is_agg_query || box->distinct) {
        return Status::Unsupported(
            "ORDER BY on a non-output column of a grouped/DISTINCT query");
      }
      XNFDB_ASSIGN_OR_RETURN(ExprPtr ex, TranslateExpr(*o.expr, scope, box));
      HeadColumn h;
      h.name = "$ORD" + std::to_string(box->head.size());
      h.expr = std::move(ex);
      box->head.push_back(std::move(h));
      idx = static_cast<int>(box->head.size()) - 1;
    }
    box->order_by.emplace_back(idx, o.descending);
  }
  box->limit = select.limit;
  box->offset = select.offset;

  return box;
}

}  // namespace

Result<std::unique_ptr<qgm::QueryGraph>> BuildSelect(
    const Catalog& catalog, const ast::SelectStmt& select) {
  auto graph = std::make_unique<QueryGraph>();
  Builder builder(catalog, graph.get());
  size_t visible_head = 0;
  XNFDB_ASSIGN_OR_RETURN(
      Box * body, builder.BuildSelectBox(select, nullptr, "query",
                                         /*allow_hidden_order=*/true,
                                         &visible_head));
  Box* top = graph->NewBox(BoxKind::kTop, "Top");
  qgm::TopOutput out;
  out.name = "RESULT";
  out.box_id = body->id;
  // Hidden ORDER BY columns are projected away at the Top.
  if (visible_head != body->head.size()) {
    for (size_t i = 0; i < visible_head; ++i) {
      out.cols.push_back(static_cast<int>(i));
    }
  }
  top->outputs.push_back(std::move(out));
  graph->set_top_box_id(top->id);
  XNFDB_RETURN_IF_ERROR(graph->Validate());
  return graph;
}

Result<Box*> Builder::BuildXnfOperator(const ast::XnfQuery& query,
                                       const std::string& prefix) {
  // Phase 0: install the XNF operator box.
  Box* xnf = graph_->NewBox(BoxKind::kXnf,
                            prefix.empty() ? "XNF" : "XNF " + prefix);

  // Phase 1a: component tables.
  for (const ast::XnfDef& def : query.defs) {
    if (def.kind != ast::XnfDef::Kind::kTable) continue;
    std::string name = prefix + ToUpperIdent(def.name);
    if (xnf->FindComponent(name) != nullptr) {
      return Status::SemanticError("duplicate XNF component '" + name + "'");
    }
    XnfComponent comp;
    comp.name = name;
    comp.is_relationship = false;
    Box* body = nullptr;
    if (def.select != nullptr) {
      XNFDB_ASSIGN_OR_RETURN(body,
                             BuildSelectBox(*def.select, nullptr, name));
    } else if (!def.view_ref.empty()) {
      // CO composition (closure property, Sect. 2): the candidates of this
      // component are the extent of a component of another XNF view. The
      // referenced view is compiled into this very graph (once per view);
      // an identity wrapper box stands in for its final derivation, which
      // the XNF semantic rewrite wires up after processing the import.
      XNFDB_ASSIGN_OR_RETURN(
          Box * import_xnf,
          ImportXnfView(def.view_ref));
      std::string target =
          ToUpperIdent(def.view_ref) + "$" + ToUpperIdent(def.view_component);
      const XnfComponent* imported = import_xnf->FindComponent(target);
      if (imported == nullptr || imported->is_relationship) {
        return Status::SemanticError(
            "XNF view " + def.view_ref + " has no component table '" +
            def.view_component + "'");
      }
      const Box* cand = graph_->box(imported->box_id);
      body = graph_->NewBox(BoxKind::kSelect, name);
      int q = AddQuant(graph_, body, QuantKind::kForeach, cand->id,
                       target);
      for (size_t i = 0; i < cand->HeadArity(); ++i) {
        HeadColumn h;
        h.name = cand->HeadName(i);
        h.expr = Expr::MakeColRef(q, static_cast<int>(i));
        body->head.push_back(std::move(h));
      }
      comp.import_xnf_box = import_xnf->id;
      comp.import_component = target;
    } else {
      // Shortcut `xemp AS EMP`: identity select over the base table.
      XNFDB_ASSIGN_OR_RETURN(Box * base, BaseTableBox(def.base_table));
      body = graph_->NewBox(BoxKind::kSelect, name);
      int q = AddQuant(graph_, body, QuantKind::kForeach, base->id,
                       ToUpperIdent(def.base_table));
      for (size_t i = 0; i < base->HeadArity(); ++i) {
        HeadColumn h;
        h.name = base->HeadName(i);
        h.expr = Expr::MakeColRef(q, static_cast<int>(i));
        body->head.push_back(std::move(h));
      }
    }
    comp.box_id = body->id;
    xnf->components.push_back(std::move(comp));
  }

  // Phase 1b: relationships. Partner components must exist by now.
  for (const ast::XnfDef& def : query.defs) {
    if (def.kind != ast::XnfDef::Kind::kRelationship) continue;
    if (def.free_reachability) {
      return Status::SemanticError(
          "FREE applies to component tables, not relationships ('" +
          def.name + "')");
    }
    std::string name = prefix + ToUpperIdent(def.name);
    if (xnf->FindComponent(name) != nullptr) {
      return Status::SemanticError("duplicate XNF component '" + name + "'");
    }
    const ast::RelateDef& rel = def.relate;

    Box* body = graph_->NewBox(BoxKind::kSelect, name);
    Scope scope;
    std::vector<int> partner_quants;  // parent first, then children

    auto bind_component =
        [&](const std::string& comp_name,
            const std::string& binding_name,
            const std::string& extra_name) -> Status {
      const XnfComponent* comp =
          xnf->FindComponent(prefix + ToUpperIdent(comp_name));
      if (comp == nullptr) {
        return Status::SemanticError("relationship '" + name +
                                     "' references unknown component '" +
                                     comp_name + "'");
      }
      if (comp->is_relationship) {
        return Status::SemanticError("relationship '" + name +
                                     "' cannot have relationship '" +
                                     comp_name + "' as a partner");
      }
      int q = AddQuant(graph_, body, QuantKind::kForeach, comp->box_id,
                       ToUpperIdent(binding_name));
      partner_quants.push_back(q);
      Binding b;
      b.name = ToUpperIdent(binding_name);
      b.quant_id = q;
      scope.bindings.push_back(b);
      if (!extra_name.empty() && !IdentEquals(extra_name, binding_name)) {
        Binding role_binding;
        role_binding.name = ToUpperIdent(extra_name);
        role_binding.quant_id = q;
        scope.bindings.push_back(role_binding);
      }
      return Status::Ok();
    };

    XnfComponent comp;
    comp.name = name;
    comp.is_relationship = true;
    comp.parent = prefix + ToUpperIdent(rel.parent);
    comp.role = ToUpperIdent(rel.role);
    // In a self-relationship (recursive CO, e.g. RELATE XPART VIA HAS,
    // XPART), the parent is addressable only through its role name and the
    // bare component name denotes the child.
    bool self_rel = false;
    for (const std::string& child : rel.children) {
      if (IdentEquals(child, rel.parent)) self_rel = true;
    }
    if (self_rel && rel.role.empty()) {
      return Status::SemanticError(
          "self-relationship '" + name +
          "' requires a VIA role name to address the parent");
    }
    // Parent partner: bound under its component name and its role name
    // (component name is skipped for self-relationships).
    XNFDB_RETURN_IF_ERROR(bind_component(
        rel.parent, self_rel ? rel.role : rel.parent,
        self_rel ? "" : rel.role));
    for (const std::string& child : rel.children) {
      XNFDB_RETURN_IF_ERROR(bind_component(child, child, ""));
      comp.children.push_back(prefix + ToUpperIdent(child));
    }
    // USING tables join in as additional F-quantifiers (not partners).
    for (const ast::TableRef& u : rel.using_tables) {
      XNFDB_ASSIGN_OR_RETURN(Box * base, BaseTableBox(u.table));
      int q = AddQuant(graph_, body, QuantKind::kForeach, base->id,
                       ToUpperIdent(u.BindingName()));
      Binding b;
      b.name = ToUpperIdent(u.BindingName());
      b.quant_id = q;
      scope.bindings.push_back(b);
    }
    if (rel.where != nullptr) {
      XNFDB_ASSIGN_OR_RETURN(ExprPtr where,
                             TranslateExpr(*rel.where, scope, body));
      qgm::SplitConjuncts(std::move(where), &body->preds);
    }
    // The relationship head: all partner columns, parent first (the
    // connection tuple of Sect. 4.1 "shows the foreign keys of the partner
    // tuples it references" — we carry full partner rows for tid lookup).
    std::vector<std::string> partners;
    partners.push_back(comp.parent);
    for (const std::string& c : comp.children) partners.push_back(c);
    for (size_t pi = 0; pi < partners.size(); ++pi) {
      int q = partner_quants[pi];
      const Box* ranged = graph_->RangedBox(q);
      for (size_t i = 0; i < ranged->HeadArity(); ++i) {
        HeadColumn h;
        h.name = partners[pi] + "." + ranged->HeadName(i);
        h.expr = Expr::MakeColRef(q, static_cast<int>(i));
        body->head.push_back(std::move(h));
      }
    }
    comp.box_id = body->id;
    xnf->components.push_back(std::move(comp));
  }

  // Phase 2: reachability marks and roots. A FREE component keeps its full
  // candidate extent (the fine-grained reachability predicate of Sect. 4.1).
  for (XnfComponent& c : xnf->components) {
    if (c.is_relationship) continue;
    bool is_child = false;
    for (const XnfComponent& r : xnf->components) {
      if (!r.is_relationship) continue;
      for (const std::string& child : r.children) {
        if (IdentEquals(child, c.name)) is_child = true;
      }
    }
    c.is_root = !is_child;
    c.reachable = is_child;  // default semantics: all non-roots reachable
    for (const ast::XnfDef& def : query.defs) {
      if (def.kind == ast::XnfDef::Kind::kTable && def.free_reachability &&
          IdentEquals(prefix + ToUpperIdent(def.name), c.name)) {
        c.reachable = false;
      }
    }
  }

  // Phase 3: TAKE projection (the outermost query only; imported sub-views
  // are inputs and produce no output streams of their own).
  if (!prefix.empty()) return xnf;
  if (query.take_all) {
    for (XnfComponent& c : xnf->components) c.taken = true;
  } else {
    for (const ast::TakeItem& item : query.take) {
      XnfComponent* c = xnf->FindComponent(ToUpperIdent(item.name));
      if (c == nullptr) {
        return Status::SemanticError("TAKE references unknown component '" +
                                     item.name + "'");
      }
      c->taken = true;
      for (const std::string& col : item.columns) {
        c->take_columns.push_back(ToUpperIdent(col));
      }
    }
    // Relationships can only be taken if their partners are taken (the
    // connection tuples reference partner rows).
    for (const XnfComponent& c : xnf->components) {
      if (!c.is_relationship || !c.taken) continue;
      std::vector<std::string> partners = c.children;
      partners.push_back(c.parent);
      for (const std::string& p : partners) {
        const XnfComponent* pc = xnf->FindComponent(p);
        if (pc == nullptr || !pc->taken) {
          return Status::SemanticError(
              "TAKE of relationship '" + c.name + "' requires partner '" + p +
              "' to be taken too");
        }
      }
    }
  }
  bool any_taken = false;
  for (const XnfComponent& c : xnf->components) any_taken |= c.taken;
  if (!any_taken) {
    return Status::SemanticError("TAKE clause selects nothing");
  }
  return xnf;
}

Result<Box*> Builder::ImportXnfView(const std::string& view_name) {
  std::string key = ToUpperIdent(view_name);
  auto it = imported_xnf_.find(key);
  if (it != imported_xnf_.end()) return it->second;
  if (++view_depth_ > 8) {
    return Status::SemanticError("XNF view composition too deep (cycle?)");
  }
  Result<const ViewDef*> view = catalog_.GetView(key);
  if (!view.ok()) return view.status();
  if (!view.value()->is_xnf) {
    return Status::SemanticError(
        "composition requires an XNF view, but " + key + " is a SQL view");
  }
  XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<ast::XnfQuery> parsed,
                         ParseXnfQuery(view.value()->definition));
  XNFDB_ASSIGN_OR_RETURN(Box * xnf, BuildXnfOperator(*parsed, key + "$"));
  --view_depth_;
  imported_xnf_[key] = xnf;
  return xnf;
}

Result<std::unique_ptr<qgm::QueryGraph>> BuildXnf(const Catalog& catalog,
                                                  const ast::XnfQuery& query) {
  auto graph = std::make_unique<QueryGraph>();
  Builder builder(catalog, graph.get());
  XNFDB_ASSIGN_OR_RETURN(Box * xnf, builder.BuildXnfOperator(query, ""));
  (void)xnf;
  Box* top = graph->NewBox(BoxKind::kTop, "Top");
  graph->set_top_box_id(top->id);
  XNFDB_RETURN_IF_ERROR(graph->Validate());
  return graph;
}

Result<qgm::ExprPtr> TranslateExprForBox(const qgm::QueryGraph& graph,
                                         const qgm::Box& box,
                                         const ast::Expr& expr) {
  // Build a scope from the box's foreach quantifiers, then translate with a
  // throwaway builder (no catalog lookups are needed for pure expressions).
  // Note: exists subqueries are not supported in this entry point.
  if (expr.kind == ast::Expr::Kind::kExists ||
      expr.kind == ast::Expr::Kind::kInSubquery) {
    return Status::Unsupported("subquery in this context");
  }
  static const Catalog& empty_catalog = *new Catalog();
  Builder builder(empty_catalog, const_cast<QueryGraph*>(&graph));
  Scope scope;
  for (const Quantifier& q : box.quants) {
    Binding b;
    b.name = q.name;
    b.quant_id = q.id;
    scope.bindings.push_back(std::move(b));
  }
  return builder.TranslateExpr(expr, scope, const_cast<Box*>(&box));
}

}  // namespace xnfdb
