// Semantic analysis: translates the AST into QGM.
//
// This is the analogue of CORONA's first compilation stage (paper Fig. 2).
// `BuildSelect` produces a normal-form (NF) QGM graph for a plain SQL query;
// `BuildXnf` runs the three XNF semantic phases of Sect. 4.1 and produces an
// XNF QGM graph: an XNF operator box enclosing the component and relationship
// boxes (Fig. 4), plus the Top box. The XNF graph is lowered to NF QGM by the
// XNF semantic rewrite (rewrite/xnf_rewrite.h).

#ifndef XNFDB_SEMANTICS_BUILDER_H_
#define XNFDB_SEMANTICS_BUILDER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "parser/ast.h"
#include "qgm/qgm.h"
#include "storage/catalog.h"

namespace xnfdb {

// Builds the QGM graph for a SELECT query. SQL views referenced in FROM are
// expanded inline; referencing an XNF view from SQL is a semantic error.
Result<std::unique_ptr<qgm::QueryGraph>> BuildSelect(
    const Catalog& catalog, const ast::SelectStmt& select);

// Builds the XNF QGM graph for an XNF query (phases 0-3 of Sect. 4.1).
Result<std::unique_ptr<qgm::QueryGraph>> BuildXnf(const Catalog& catalog,
                                                  const ast::XnfQuery& query);

// Translates a scalar AST expression in the context of an existing box.
// Exposed for tests and for the cache's write-back compiler.
// (Name resolution is against the box's foreach quantifiers.)
Result<qgm::ExprPtr> TranslateExprForBox(const qgm::QueryGraph& graph,
                                         const qgm::Box& box,
                                         const ast::Expr& expr);

}  // namespace xnfdb

#endif  // XNFDB_SEMANTICS_BUILDER_H_
