#include "cache/xnf_cache.h"

#include "cache/serialize.h"
#include "cache/writeback.h"
#include "common/str_util.h"
#include "parser/parser.h"
#include "xnf/compiler.h"

namespace xnfdb {

Result<std::unique_ptr<ast::XnfQuery>> XNFCache::ResolveQuery(
    Database* db, const std::string& query) {
  std::string trimmed = Trim(query);
  bool is_ident = !trimmed.empty();
  for (char c : trimmed) {
    if (!isalnum(static_cast<unsigned char>(c)) && c != '_') is_ident = false;
  }
  if (is_ident && db->catalog().HasView(trimmed)) {
    return LoadXnfView(db->catalog(), trimmed);
  }
  return ParseXnfQuery(query);
}

Result<std::unique_ptr<XNFCache>> XNFCache::Evaluate(Database* db,
                                                     const std::string& query,
                                                     const Options& options) {
  XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<ast::XnfQuery> definition,
                         ResolveQuery(db, query));
  XNFDB_ASSIGN_OR_RETURN(
      QueryResult result,
      db->QueryXnf(*definition, options.compile, options.exec));
  XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<Workspace> workspace,
                         Workspace::Build(result, options.workspace));
  return std::unique_ptr<XNFCache>(new XNFCache(
      db, std::move(definition), std::move(workspace), options));
}

Result<IndependentCursor> XNFCache::OpenCursor(const std::string& component) {
  XNFDB_ASSIGN_OR_RETURN(ComponentTable * comp,
                         workspace_->component(component));
  return IndependentCursor(comp);
}

Result<DependentCursor> XNFCache::OpenDependentCursor(
    const std::string& relationship, CachedRow* anchor,
    DependentCursor::Direction direction) {
  XNFDB_ASSIGN_OR_RETURN(Relationship * rel,
                         workspace_->relationship(relationship));
  return DependentCursor(workspace_.get(), rel, anchor, direction);
}

Result<std::vector<CachedRow*>> XNFCache::Path(const std::string& path) {
  return EvalPath(workspace_.get(), path);
}

Status XNFCache::Update(CachedRow* row, const std::string& column, Value v) {
  int col = row->component->schema().FindColumn(column);
  if (col < 0) {
    return Status::NotFound("column " + column + " not in component " +
                            row->component->name());
  }
  return workspace_->UpdateRow(row, col, std::move(v));
}

Result<CachedRow*> XNFCache::Insert(const std::string& component,
                                    Tuple values) {
  return workspace_->InsertRow(component, std::move(values));
}

Result<std::vector<std::string>> XNFCache::WriteBack(
    WriteBackOptions options) {
  if (options.env == nullptr) {
    options.env = options_.env != nullptr ? options_.env : db_->env();
  }
  WriteBackPlanner planner(db_, definition_.get(), std::move(options));
  return planner.Apply(workspace_.get());
}

Status XNFCache::Refresh() {
  if (workspace_->HasPendingChanges()) {
    return Status::InvalidArgument(
        "refresh would lose pending changes; write back first");
  }
  XNFDB_ASSIGN_OR_RETURN(
      QueryResult result,
      db_->QueryXnf(*definition_, options_.compile, options_.exec));
  XNFDB_ASSIGN_OR_RETURN(workspace_,
                         Workspace::Build(result, options_.workspace));
  return Status::Ok();
}

Status XNFCache::SaveTo(const std::string& path) {
  Env* env = options_.env != nullptr ? options_.env : db_->env();
  return SaveWorkspaceToFile(*workspace_, path, env);
}

Result<std::unique_ptr<XNFCache>> XNFCache::LoadFrom(Database* db,
                                                     const std::string& path,
                                                     const std::string& query,
                                                     const Options& options) {
  XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<ast::XnfQuery> definition,
                         ResolveQuery(db, query));
  Env* env = options.env != nullptr ? options.env : db->env();
  XNFDB_ASSIGN_OR_RETURN(
      std::unique_ptr<Workspace> workspace,
      LoadWorkspaceFromFile(path, options.workspace, env));
  return std::unique_ptr<XNFCache>(new XNFCache(
      db, std::move(definition), std::move(workspace), options));
}

}  // namespace xnfdb
