// Write-back of local cache changes to the database server (paper Sect. 2
// and 3: updates are made locally at the client and "later on transferred
// back to the database server").
//
// Updatability follows the paper's rules:
//  * component tables defined by a simple selection over one base table are
//    updatable ("update of any portion of a base table can always be
//    replaced with update of a view consisting of a proper selection over
//    the base table"); join/aggregation/distinct views are not;
//  * relationships "defined based on simple foreign keys or connect tables"
//    support connect/disconnect: a foreign-key relationship translates to
//    updating the child's FK column, a connect-table relationship (USING)
//    translates to inserting/deleting rows of the connect table;
//  * richer definitions are rejected with a diagnostic.

#ifndef XNFDB_CACHE_WRITEBACK_H_
#define XNFDB_CACHE_WRITEBACK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "cache/workspace.h"
#include "common/env.h"
#include "parser/ast.h"

namespace xnfdb {

// Durability settings for applying pending changes. Write-back is a batch
// of generated SQL statements; with a journal configured, the batch is
// recorded on disk (CRC-protected, atomic) *before* any statement runs and
// removed after all of them succeeded — so a crash or I/O failure
// mid-write-back leaves both the workspace's pending marks and the planned
// statement list intact for recovery. Transient kIoError failures (journal
// I/O and statement execution alike) are retried with exponential backoff.
struct WriteBackOptions {
  // When non-empty, journal the planned statements to this file before
  // executing, and remove it once all statements have been applied.
  std::string journal_path;
  Env* env = nullptr;  // file I/O environment; Env::Default() when null
  int max_retries = 3;          // extra attempts after a transient kIoError
  int backoff_initial_ms = 1;   // first retry delay, doubled per retry
  // Retry sleeps are jittered ("equal jitter": half the exponential delay
  // plus a uniform draw over the other half) so concurrent write-backs
  // tripping over the same fault decorrelate instead of retrying in
  // lock-step. Non-zero: deterministic jitter sequence (tests); 0: seeded
  // from the clock.
  uint64_t jitter_seed = 0;
};

// Updatability analysis result for one component table.
struct ComponentPlan {
  std::string component;
  bool updatable = false;
  std::string reason;  // set when !updatable

  std::string base_table;
  // cached column i -> base table column index (-1 impossible).
  std::vector<int> column_map;
  // Cached column carrying the base table's primary key, or -1 (then
  // write-back predicates match on all original column values).
  int key_cached_col = -1;
};

// Updatability analysis result for one relationship.
struct RelationshipPlan {
  enum class Kind { kNotUpdatable, kForeignKey, kConnectTable };

  std::string relationship;
  Kind kind = Kind::kNotUpdatable;
  std::string reason;

  // kForeignKey: UPDATE <child base> SET <fk col> = parent key.
  std::string child_base;
  std::string child_fk_column;      // base column name
  int parent_key_cached_col = -1;   // cached col of the parent's key
  int child_key_cached_col = -1;    // cached col identifying the child row
  std::string child_key_base_column;

  // kConnectTable: INSERT INTO / DELETE FROM <connect_table>.
  std::string connect_table;
  std::string ct_parent_column;  // connect-table column matching the parent
  std::string ct_child_column;   // connect-table column matching the child
  int ct_parent_cached_col = -1;  // cached col of parent providing the value
  int ct_child_cached_col = -1;   // cached col of child providing the value
};

// Analyzes an XNF view definition against the catalog and applies pending
// workspace changes by generating SQL statements.
class WriteBackPlanner {
 public:
  // `definition` must outlive the planner.
  WriteBackPlanner(Database* db, const ast::XnfQuery* definition,
                   WriteBackOptions options = {})
      : db_(db), definition_(definition), options_(std::move(options)) {}

  // Analysis for one component/relationship of the cached workspace
  // (the workspace supplies the projected schemas).
  Result<ComponentPlan> AnalyzeComponent(const ComponentTable& component);
  Result<RelationshipPlan> AnalyzeRelationship(const Relationship& rel,
                                               Workspace* workspace);

  // Generates the SQL statements that would apply all pending changes of
  // `workspace` — inserts, updates, connects, disconnects, deletes, in that
  // order — without executing anything. Analysis errors (non-updatable
  // components/relationships) surface here, before any server state
  // changes.
  Result<std::vector<std::string>> Plan(Workspace* workspace);

  // Plans, journals (when configured), then executes all pending changes.
  // On success the workspace's pending marks are cleared and the journal
  // removed. Returns the executed statements.
  Result<std::vector<std::string>> Apply(Workspace* workspace);

 private:
  const ast::XnfDef* FindDef(const std::string& name) const;

  Database* db_;
  const ast::XnfQuery* definition_;
  WriteBackOptions options_;
};

// Reads back a write-back journal (for recovery after a failed or
// interrupted Apply): verifies magic, CRC and statement framing, and
// returns the planned statements. `env` defaults to Env::Default().
Result<std::vector<std::string>> LoadWriteBackJournal(const std::string& path,
                                                      Env* env = nullptr);

// Renders a Value as a SQL literal with proper string escaping.
std::string SqlLiteral(const Value& v);

}  // namespace xnfdb

#endif  // XNFDB_CACHE_WRITEBACK_H_
