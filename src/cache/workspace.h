// The CO cache workspace (paper Sect. 3, 5, Fig. 7).
//
// "The workspace is constructed from the output tuples of the XNF query by
// converting connections into pointers which allow traversing the structure
// in any direction. In addition we generate pointers to allow browsing all
// elements of a component and all elements of a node which are connected to
// a given component by a specified relationship."
//
// The workspace materializes the heterogeneous answer stream of an XNF
// query in client memory: one container per component table, one connection
// set per relationship, and per-row adjacency lists with *swizzled*
// virtual-memory pointers (an option keeps tuple-id indirection instead, to
// quantify the benefit of swizzling, cf. the related-work discussion in
// Sect. 5.3).

#ifndef XNFDB_CACHE_WORKSPACE_H_
#define XNFDB_CACHE_WORKSPACE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "exec/executor.h"

namespace xnfdb {

class Workspace;
class ComponentTable;
class Relationship;

// One component row materialized in the cache.
struct CachedRow {
  TupleId tid = -1;
  Tuple values;
  ComponentTable* component = nullptr;

  // Pending-update state (Sect. 2 update operators).
  bool dirty = false;
  bool inserted = false;
  bool deleted = false;
  // Set once a delete has been written back (or was a local no-op): the
  // row stays invisible but is no longer pending.
  bool deleted_synced = false;
  Tuple original;  // pre-update values, for write-back predicates

  // Swizzled adjacency, indexed by relationship index within the workspace:
  // as a parent, the children per relationship; as a child, the parents.
  // Only populated when the workspace swizzles (default).
  std::vector<std::vector<CachedRow*>> children;
  std::vector<std::vector<CachedRow*>> parents;
};

// One connection instance. Parent first, then children.
struct CachedConnection {
  std::vector<CachedRow*> partners;   // swizzled form
  std::vector<TupleId> partner_tids;  // always kept (serialization, unswizzled mode)
  bool inserted = false;  // pending connect
  bool deleted = false;   // pending disconnect
};

// Container for all instances of one component ("we also need a container
// class to hold all the instances of e.g. class xemp", Sect. 5.2).
class ComponentTable {
 public:
  ComponentTable(std::string name, Schema schema, int index)
      : name_(std::move(name)), schema_(std::move(schema)), index_(index) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int index() const { return index_; }

  size_t size() const { return rows_.size(); }
  CachedRow* row(size_t i) { return rows_[i].get(); }
  const CachedRow* row(size_t i) const { return rows_[i].get(); }

  // Lookup by tuple id (hash). This is the navigation path used when
  // swizzling is disabled.
  CachedRow* FindByTid(TupleId tid);

  // First row whose column `col` equals `v` (linear scan; convenience for
  // examples and tests).
  CachedRow* FindByValue(int col, const Value& v);

  // The live (non-deleted) row count.
  size_t LiveCount() const;

 private:
  friend class Workspace;
  friend class CacheSerializer;

  CachedRow* AddRow(TupleId tid, Tuple values);

  std::string name_;
  Schema schema_;
  int index_;
  std::vector<std::unique_ptr<CachedRow>> rows_;  // stable addresses
  std::unordered_map<TupleId, CachedRow*> by_tid_;
};

// All connections of one relationship.
class Relationship {
 public:
  Relationship(std::string name, std::vector<std::string> partner_names,
               int index)
      : name_(std::move(name)),
        partner_names_(std::move(partner_names)),
        index_(index) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& partner_names() const {
    return partner_names_;
  }
  // Parent component name (first partner).
  const std::string& parent_name() const { return partner_names_[0]; }
  int index() const { return index_; }

  size_t size() const { return connections_.size(); }
  CachedConnection* connection(size_t i) { return connections_[i].get(); }
  const CachedConnection* connection(size_t i) const {
    return connections_[i].get();
  }

  // Unswizzled navigation: tids of children connected to `parent_tid`
  // (first child partner only for n-ary relationships).
  const std::vector<TupleId>* ChildTids(TupleId parent_tid) const;
  const std::vector<TupleId>* ParentTids(TupleId child_tid) const;

 private:
  friend class Workspace;

  std::string name_;
  std::vector<std::string> partner_names_;
  int index_;
  std::vector<std::unique_ptr<CachedConnection>> connections_;
  std::unordered_map<TupleId, std::vector<TupleId>> children_by_parent_;
  std::unordered_map<TupleId, std::vector<TupleId>> parents_by_child_;
};

struct WorkspaceOptions {
  // Convert connections into direct memory pointers (default). When false,
  // navigation goes through tuple-id hash lookups instead — the ablation
  // for the >100k tuples/second claim.
  bool swizzle = true;
};

// The client-side main-memory representation of one CO query result.
class Workspace {
 public:
  // Builds a workspace from the heterogeneous answer stream.
  static Result<std::unique_ptr<Workspace>> Build(
      const QueryResult& result, const WorkspaceOptions& options = {});

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  const WorkspaceOptions& options() const { return options_; }

  size_t component_count() const { return components_.size(); }
  ComponentTable* component(size_t i) { return components_[i].get(); }
  Result<ComponentTable*> component(const std::string& name);

  size_t relationship_count() const { return relationships_.size(); }
  Relationship* relationship(size_t i) { return relationships_[i].get(); }
  Result<Relationship*> relationship(const std::string& name);

  // --- update operators (Sect. 2) -----------------------------------------
  // All mutations are local to the cache until write-back (Sect. 3: "If the
  // CO is updatable, changes can be made locally ... and later on
  // transferred back to the database server").
  Status UpdateRow(CachedRow* row, int column, Value v);
  Result<CachedRow*> InsertRow(const std::string& component, Tuple values);
  Status DeleteRow(CachedRow* row);
  Status Connect(const std::string& relationship, CachedRow* parent,
                 CachedRow* child);
  Status Disconnect(const std::string& relationship, CachedRow* parent,
                    CachedRow* child);

  // Navigation helpers used by cursors: children of `parent` through
  // relationship index `rel` (swizzled or tid-based as configured).
  // Out-params are filled with either pointers or tids.
  const std::vector<CachedRow*>* SwizzledChildren(const CachedRow* parent,
                                                  int rel) const;
  const std::vector<CachedRow*>* SwizzledParents(const CachedRow* child,
                                                 int rel) const;

  // True if any row or connection carries pending changes.
  bool HasPendingChanges() const;
  // Clears dirty/inserted/deleted marks after a successful write-back.
  void ClearPendingChanges();

 private:
  explicit Workspace(WorkspaceOptions options) : options_(options) {}

  Status AddConnection(Relationship* rel, std::vector<TupleId> tids,
                       bool pending_insert);

  WorkspaceOptions options_;
  std::vector<std::unique_ptr<ComponentTable>> components_;
  std::vector<std::unique_ptr<Relationship>> relationships_;
  TupleId next_local_tid_ = -2;  // negative tids for locally inserted rows

  friend class CacheSerializer;
};

}  // namespace xnfdb

#endif  // XNFDB_CACHE_WORKSPACE_H_
