#include "cache/workspace.h"

#include <algorithm>

#include "obs/metrics.h"

namespace xnfdb {

CachedRow* ComponentTable::FindByTid(TupleId tid) {
  // Handles are stable for the registry's lifetime, so the name lookup
  // happens once per process, not per call.
  static obs::Counter* hits =
      obs::MetricsRegistry::Default().GetCounter("cache.lookup.hits");
  static obs::Counter* misses =
      obs::MetricsRegistry::Default().GetCounter("cache.lookup.misses");
  auto it = by_tid_.find(tid);
  if (it == by_tid_.end()) {
    misses->Increment();
    return nullptr;
  }
  hits->Increment();
  return it->second;
}

CachedRow* ComponentTable::FindByValue(int col, const Value& v) {
  for (auto& row : rows_) {
    if (!row->deleted && row->values[col] == v) return row.get();
  }
  return nullptr;
}

size_t ComponentTable::LiveCount() const {
  size_t n = 0;
  for (const auto& row : rows_) {
    if (!row->deleted) ++n;
  }
  return n;
}

CachedRow* ComponentTable::AddRow(TupleId tid, Tuple values) {
  auto row = std::make_unique<CachedRow>();
  row->tid = tid;
  row->values = std::move(values);
  row->component = this;
  CachedRow* raw = row.get();
  rows_.push_back(std::move(row));
  by_tid_[tid] = raw;
  return raw;
}

const std::vector<TupleId>* Relationship::ChildTids(TupleId parent_tid) const {
  auto it = children_by_parent_.find(parent_tid);
  return it == children_by_parent_.end() ? nullptr : &it->second;
}

const std::vector<TupleId>* Relationship::ParentTids(TupleId child_tid) const {
  auto it = parents_by_child_.find(child_tid);
  return it == parents_by_child_.end() ? nullptr : &it->second;
}

Result<std::unique_ptr<Workspace>> Workspace::Build(
    const QueryResult& result, const WorkspaceOptions& options) {
  std::unique_ptr<Workspace> ws(new Workspace(options));

  // Containers first: components, then relationships (the stream may
  // interleave arbitrarily, but descriptors are known up front).
  std::vector<int> output_to_component(result.outputs.size(), -1);
  std::vector<int> output_to_relationship(result.outputs.size(), -1);
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    const OutputDesc& desc = result.outputs[i];
    if (!desc.is_connection) {
      output_to_component[i] = static_cast<int>(ws->components_.size());
      ws->components_.push_back(std::make_unique<ComponentTable>(
          desc.name, desc.schema,
          static_cast<int>(ws->components_.size())));
    }
  }
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    const OutputDesc& desc = result.outputs[i];
    if (desc.is_connection) {
      output_to_relationship[i] = static_cast<int>(ws->relationships_.size());
      ws->relationships_.push_back(std::make_unique<Relationship>(
          desc.name, desc.partner_names,
          static_cast<int>(ws->relationships_.size())));
    }
  }

  // Load the stream. Connections may arrive before their partner rows (the
  // server delivers tuples "whenever available", Sect. 5.1), so connection
  // resolution is deferred to a second pass.
  std::vector<std::pair<int, std::vector<TupleId>>> pending_connections;
  for (const StreamItem& item : result.stream) {
    if (item.kind == StreamItem::Kind::kRow) {
      int ci = output_to_component[item.output];
      if (ci < 0) {
        return Status::Internal("row item on a connection output");
      }
      ws->components_[ci]->AddRow(item.tid, item.values);
    } else {
      int ri = output_to_relationship[item.output];
      if (ri < 0) {
        return Status::Internal("connection item on a component output");
      }
      pending_connections.emplace_back(ri, item.tids);
    }
  }
  for (auto& [ri, tids] : pending_connections) {
    XNFDB_RETURN_IF_ERROR(ws->AddConnection(ws->relationships_[ri].get(),
                                            std::move(tids),
                                            /*pending_insert=*/false));
  }
  return ws;
}

Status Workspace::AddConnection(Relationship* rel, std::vector<TupleId> tids,
                                bool pending_insert) {
  if (tids.size() != rel->partner_names().size()) {
    return Status::Internal("connection arity mismatch in relationship " +
                            rel->name());
  }
  auto conn = std::make_unique<CachedConnection>();
  conn->partner_tids = tids;
  conn->inserted = pending_insert;
  // Resolve partner rows (swizzling: tids -> virtual-memory pointers).
  for (size_t pi = 0; pi < tids.size(); ++pi) {
    XNFDB_ASSIGN_OR_RETURN(ComponentTable * comp,
                           component(rel->partner_names()[pi]));
    CachedRow* row = comp->FindByTid(tids[pi]);
    if (row == nullptr) {
      return Status::Internal("dangling connection in relationship " +
                              rel->name() + ": no row with tid " +
                              std::to_string(tids[pi]) + " in component " +
                              comp->name());
    }
    conn->partners.push_back(row);
  }

  // Adjacency: parent <-> each child partner.
  CachedRow* parent = conn->partners[0];
  size_t rel_count = relationships_.size();
  auto ensure = [rel_count](std::vector<std::vector<CachedRow*>>* adj) {
    if (adj->size() < rel_count) adj->resize(rel_count);
  };
  static obs::Counter* swizzle_installs =
      obs::MetricsRegistry::Default().GetCounter("cache.swizzle.installs");
  for (size_t pi = 1; pi < conn->partners.size(); ++pi) {
    CachedRow* child = conn->partners[pi];
    if (options_.swizzle) {
      ensure(&parent->children);
      ensure(&child->parents);
      parent->children[rel->index()].push_back(child);
      child->parents[rel->index()].push_back(parent);
      swizzle_installs->Increment();
    }
    rel->children_by_parent_[parent->tid].push_back(child->tid);
    rel->parents_by_child_[child->tid].push_back(parent->tid);
  }
  rel->connections_.push_back(std::move(conn));
  return Status::Ok();
}

Result<ComponentTable*> Workspace::component(const std::string& name) {
  for (auto& c : components_) {
    if (IdentEquals(c->name(), name)) return c.get();
  }
  return Status::NotFound("component " + name + " not in workspace");
}

Result<Relationship*> Workspace::relationship(const std::string& name) {
  for (auto& r : relationships_) {
    if (IdentEquals(r->name(), name)) return r.get();
  }
  return Status::NotFound("relationship " + name + " not in workspace");
}

Status Workspace::UpdateRow(CachedRow* row, int column, Value v) {
  if (row->deleted) {
    return Status::InvalidArgument("update of a deleted cached row");
  }
  if (column < 0 ||
      static_cast<size_t>(column) >= row->component->schema().size()) {
    return Status::InvalidArgument("column index out of range");
  }
  if (!row->dirty && !row->inserted) {
    row->original = row->values;
    row->dirty = true;
  }
  row->values[column] = std::move(v);
  return Status::Ok();
}

Result<CachedRow*> Workspace::InsertRow(const std::string& component_name,
                                        Tuple values) {
  XNFDB_ASSIGN_OR_RETURN(ComponentTable * comp, component(component_name));
  XNFDB_RETURN_IF_ERROR(comp->schema().ValidateTuple(values));
  CachedRow* row = comp->AddRow(next_local_tid_--, std::move(values));
  row->inserted = true;
  return row;
}

Status Workspace::DeleteRow(CachedRow* row) {
  if (row->deleted) return Status::InvalidArgument("row already deleted");
  row->deleted = true;
  return Status::Ok();
}

Status Workspace::Connect(const std::string& relationship_name,
                          CachedRow* parent, CachedRow* child) {
  XNFDB_ASSIGN_OR_RETURN(Relationship * rel, relationship(relationship_name));
  if (rel->partner_names().size() != 2) {
    return Status::Unsupported("connect on n-ary relationship " +
                               rel->name());
  }
  if (!IdentEquals(parent->component->name(), rel->partner_names()[0]) ||
      !IdentEquals(child->component->name(), rel->partner_names()[1])) {
    return Status::InvalidArgument(
        "connect partners do not match relationship " + rel->name());
  }
  return AddConnection(rel, {parent->tid, child->tid},
                       /*pending_insert=*/true);
}

Status Workspace::Disconnect(const std::string& relationship_name,
                             CachedRow* parent, CachedRow* child) {
  XNFDB_ASSIGN_OR_RETURN(Relationship * rel, relationship(relationship_name));
  for (auto& conn : rel->connections_) {
    if (conn->deleted) continue;
    if (conn->partners.size() == 2 && conn->partners[0] == parent &&
        conn->partners[1] == child) {
      conn->deleted = true;
      // Remove from adjacency so navigation reflects the local state.
      if (options_.swizzle) {
        auto& kids = parent->children[rel->index()];
        kids.erase(std::remove(kids.begin(), kids.end(), child), kids.end());
        auto& folks = child->parents[rel->index()];
        folks.erase(std::remove(folks.begin(), folks.end(), parent),
                    folks.end());
      }
      auto& ct = rel->children_by_parent_[parent->tid];
      ct.erase(std::remove(ct.begin(), ct.end(), child->tid), ct.end());
      auto& pt = rel->parents_by_child_[child->tid];
      pt.erase(std::remove(pt.begin(), pt.end(), parent->tid), pt.end());
      return Status::Ok();
    }
  }
  return Status::NotFound("no such connection in relationship " +
                          rel->name());
}

const std::vector<CachedRow*>* Workspace::SwizzledChildren(
    const CachedRow* parent, int rel) const {
  if (static_cast<size_t>(rel) >= parent->children.size()) return nullptr;
  return &parent->children[rel];
}

const std::vector<CachedRow*>* Workspace::SwizzledParents(
    const CachedRow* child, int rel) const {
  if (static_cast<size_t>(rel) >= child->parents.size()) return nullptr;
  return &child->parents[rel];
}

bool Workspace::HasPendingChanges() const {
  for (const auto& comp : components_) {
    for (size_t i = 0; i < comp->size(); ++i) {
      const CachedRow* row = comp->row(i);
      if (row->dirty || row->inserted ||
          (row->deleted && !row->deleted_synced)) {
        return true;
      }
    }
  }
  for (const auto& rel : relationships_) {
    for (size_t i = 0; i < rel->size(); ++i) {
      const CachedConnection* conn = rel->connection(i);
      if (conn->inserted || conn->deleted) return true;
    }
  }
  return false;
}

void Workspace::ClearPendingChanges() {
  for (auto& comp : components_) {
    for (size_t i = 0; i < comp->size(); ++i) {
      CachedRow* row = comp->row(i);
      row->dirty = false;
      row->inserted = false;
      if (row->deleted) row->deleted_synced = true;
      row->original.clear();
    }
  }
  for (auto& rel : relationships_) {
    // Written-back disconnects are locally gone; drop the tombstones.
    // Connect marks are cleared (the connection is now stored).
    auto& conns = rel->connections_;
    for (auto it = conns.begin(); it != conns.end();) {
      if ((*it)->deleted) {
        it = conns.erase(it);
      } else {
        (*it)->inserted = false;
        ++it;
      }
    }
  }
}

}  // namespace xnfdb
