#include "cache/serialize.h"

#include <fstream>
#include <sstream>

namespace xnfdb {

namespace {

constexpr char kMagic[] = "XNFCACHE 1";

void WriteValue(std::ostream& out, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      out << "N";
      break;
    case DataType::kInt:
      out << "I " << v.AsInt();
      break;
    case DataType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << v.AsDouble();
      out << "D " << os.str();
      break;
    }
    case DataType::kString:
      out << "S " << v.AsString().size() << " " << v.AsString();
      break;
    case DataType::kBool:
      out << "B " << (v.AsBool() ? 1 : 0);
      break;
  }
  out << "\n";
}

Result<Value> ReadValue(std::istream& in) {
  std::string tag;
  if (!(in >> tag)) return Status::IoError("unexpected end of cache file");
  if (tag == "N") return Value::Null();
  if (tag == "I") {
    int64_t v;
    in >> v;
    return Value(v);
  }
  if (tag == "D") {
    double v;
    in >> v;
    return Value(v);
  }
  if (tag == "B") {
    int v;
    in >> v;
    return Value(v != 0);
  }
  if (tag == "S") {
    size_t len;
    in >> len;
    in.get();  // the separating space
    std::string s(len, '\0');
    in.read(s.data(), static_cast<std::streamsize>(len));
    return Value(std::move(s));
  }
  return Status::IoError("bad value tag '" + tag + "' in cache file");
}

}  // namespace

// Friend of Workspace; performs the actual reconstruction.
class CacheSerializer {
 public:
  static Status Save(const Workspace& ws, std::ostream& out) {
    if (ws.HasPendingChanges()) {
      return Status::InvalidArgument(
          "workspace has pending changes; write back before saving");
    }
    out << kMagic << "\n";
    out << "COMPONENTS " << ws.components_.size() << "\n";
    for (const auto& comp : ws.components_) {
      out << "COMPONENT " << comp->name() << " " << comp->schema().size()
          << " " << comp->size() << "\n";
      for (const Column& col : comp->schema().columns()) {
        out << "COL " << col.name << " " << static_cast<int>(col.type)
            << "\n";
      }
      for (size_t i = 0; i < comp->size(); ++i) {
        const CachedRow* row = comp->row(i);
        out << "ROW " << row->tid << "\n";
        for (const Value& v : row->values) WriteValue(out, v);
      }
    }
    out << "RELATIONSHIPS " << ws.relationships_.size() << "\n";
    for (const auto& rel : ws.relationships_) {
      out << "RELATIONSHIP " << rel->name() << " "
          << rel->partner_names().size() << " " << rel->size() << "\n";
      for (const std::string& p : rel->partner_names()) {
        out << "PARTNER " << p << "\n";
      }
      for (size_t i = 0; i < rel->size(); ++i) {
        const CachedConnection* conn = rel->connection(i);
        out << "CONN";
        for (TupleId tid : conn->partner_tids) out << " " << tid;
        out << "\n";
      }
    }
    out << "END\n";
    return out.good() ? Status::Ok()
                      : Status::IoError("write to cache stream failed");
  }

  static Result<std::unique_ptr<Workspace>> Load(
      std::istream& in, const WorkspaceOptions& options) {
    std::string line;
    if (!std::getline(in, line) || line != kMagic) {
      return Status::IoError("bad cache file magic");
    }
    std::unique_ptr<Workspace> ws(new Workspace(options));
    std::string word;
    size_t n_components;
    in >> word >> n_components;
    if (word != "COMPONENTS") return Status::IoError("expected COMPONENTS");
    for (size_t c = 0; c < n_components; ++c) {
      std::string name;
      size_t ncols, nrows;
      in >> word >> name >> ncols >> nrows;
      if (word != "COMPONENT") return Status::IoError("expected COMPONENT");
      Schema schema;
      for (size_t i = 0; i < ncols; ++i) {
        std::string col_name;
        int type;
        in >> word >> col_name >> type;
        if (word != "COL") return Status::IoError("expected COL");
        schema.AddColumn(Column{col_name, static_cast<DataType>(type)});
      }
      auto comp = std::make_unique<ComponentTable>(
          name, std::move(schema), static_cast<int>(ws->components_.size()));
      for (size_t r = 0; r < nrows; ++r) {
        TupleId tid;
        in >> word >> tid;
        if (word != "ROW") return Status::IoError("expected ROW");
        Tuple values;
        values.reserve(ncols);
        for (size_t i = 0; i < ncols; ++i) {
          XNFDB_ASSIGN_OR_RETURN(Value v, ReadValue(in));
          values.push_back(std::move(v));
        }
        comp->AddRow(tid, std::move(values));
      }
      ws->components_.push_back(std::move(comp));
    }
    size_t n_rels;
    in >> word >> n_rels;
    if (word != "RELATIONSHIPS") return Status::IoError("expected RELATIONSHIPS");
    struct PendingRel {
      std::string name;
      std::vector<std::string> partners;
      std::vector<std::vector<TupleId>> conns;
    };
    std::vector<PendingRel> pending;
    for (size_t r = 0; r < n_rels; ++r) {
      PendingRel p;
      size_t n_partners, n_conns;
      in >> word >> p.name >> n_partners >> n_conns;
      if (word != "RELATIONSHIP") return Status::IoError("expected RELATIONSHIP");
      for (size_t i = 0; i < n_partners; ++i) {
        std::string partner;
        in >> word >> partner;
        if (word != "PARTNER") return Status::IoError("expected PARTNER");
        p.partners.push_back(std::move(partner));
      }
      for (size_t i = 0; i < n_conns; ++i) {
        in >> word;
        if (word != "CONN") return Status::IoError("expected CONN");
        std::vector<TupleId> tids(n_partners);
        for (TupleId& t : tids) in >> t;
        p.conns.push_back(std::move(tids));
      }
      pending.push_back(std::move(p));
    }
    // Create all relationship containers first (adjacency vectors are
    // indexed by relationship count), then resolve connections.
    for (PendingRel& p : pending) {
      ws->relationships_.push_back(std::make_unique<Relationship>(
          p.name, p.partners, static_cast<int>(ws->relationships_.size())));
    }
    for (size_t r = 0; r < pending.size(); ++r) {
      for (std::vector<TupleId>& tids : pending[r].conns) {
        XNFDB_RETURN_IF_ERROR(ws->AddConnection(ws->relationships_[r].get(),
                                                std::move(tids), false));
      }
    }
    return ws;
  }
};

Status SaveWorkspace(const Workspace& workspace, std::ostream& out) {
  return CacheSerializer::Save(workspace, out);
}

Result<std::unique_ptr<Workspace>> LoadWorkspace(
    std::istream& in, const WorkspaceOptions& options) {
  return CacheSerializer::Load(in, options);
}

Status SaveWorkspaceToFile(const Workspace& workspace,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return SaveWorkspace(workspace, out);
}

Result<std::unique_ptr<Workspace>> LoadWorkspaceFromFile(
    const std::string& path, const WorkspaceOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return LoadWorkspace(in, options);
}

}  // namespace xnfdb
