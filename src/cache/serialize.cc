#include "cache/serialize.h"

#include <fstream>
#include <sstream>

#include "common/file_format.h"

namespace xnfdb {

namespace {

constexpr char kMagicV1[] = "XNFCACHE 1";
constexpr char kMagicV2[] = "XNFCACHE 2";

void WriteValue(std::ostream& out, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      out << "N";
      break;
    case DataType::kInt:
      out << "I " << v.AsInt();
      break;
    case DataType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << v.AsDouble();
      out << "D " << os.str();
      break;
    }
    case DataType::kString:
      out << "S " << v.AsString().size() << " " << v.AsString();
      break;
    case DataType::kBool:
      out << "B " << (v.AsBool() ? 1 : 0);
      break;
  }
  out << "\n";
}

Result<Value> ReadValue(std::istream& in) {
  std::string tag;
  if (!(in >> tag)) return Status::IoError("unexpected end of cache file");
  if (tag == "N") return Value::Null();
  if (tag == "I") {
    int64_t v;
    if (!(in >> v)) return Status::IoError("bad integer in cache file");
    return Value(v);
  }
  if (tag == "D") {
    double v;
    if (!(in >> v)) return Status::IoError("bad double in cache file");
    return Value(v);
  }
  if (tag == "B") {
    int v;
    if (!(in >> v)) return Status::IoError("bad boolean in cache file");
    return Value(v != 0);
  }
  if (tag == "S") {
    size_t len;
    if (!(in >> len)) return Status::IoError("bad string length");
    in.get();  // the separating space
    int64_t remaining = StreamRemainingBytes(in);
    if (remaining >= 0 && static_cast<int64_t>(len) > remaining) {
      return Status::IoError("string length " + std::to_string(len) +
                             " exceeds remaining cache file");
    }
    std::string s(len, '\0');
    in.read(s.data(), static_cast<std::streamsize>(len));
    if (static_cast<size_t>(in.gcount()) != len) {
      return Status::IoError("truncated string value in cache file");
    }
    return Value(std::move(s));
  }
  return Status::IoError("bad value tag '" + tag + "' in cache file");
}

}  // namespace

// Friend of Workspace; performs the actual reconstruction.
class CacheSerializer {
 public:
  static void WriteComponentsPayload(const Workspace& ws, std::ostream& out) {
    out << "COMPONENTS " << ws.components_.size() << "\n";
    for (const auto& comp : ws.components_) {
      out << "COMPONENT " << comp->name() << " " << comp->schema().size()
          << " " << comp->size() << "\n";
      for (const Column& col : comp->schema().columns()) {
        out << "COL " << col.name << " " << static_cast<int>(col.type)
            << "\n";
      }
      for (size_t i = 0; i < comp->size(); ++i) {
        const CachedRow* row = comp->row(i);
        out << "ROW " << row->tid << "\n";
        for (const Value& v : row->values) WriteValue(out, v);
      }
    }
  }

  static void WriteRelationshipsPayload(const Workspace& ws,
                                        std::ostream& out) {
    out << "RELATIONSHIPS " << ws.relationships_.size() << "\n";
    for (const auto& rel : ws.relationships_) {
      out << "RELATIONSHIP " << rel->name() << " "
          << rel->partner_names().size() << " " << rel->size() << "\n";
      for (const std::string& p : rel->partner_names()) {
        out << "PARTNER " << p << "\n";
      }
      for (size_t i = 0; i < rel->size(); ++i) {
        const CachedConnection* conn = rel->connection(i);
        out << "CONN";
        for (TupleId tid : conn->partner_tids) out << " " << tid;
        out << "\n";
      }
    }
  }

  static Status Save(const Workspace& ws, std::ostream& out,
                     int format_version) {
    if (ws.HasPendingChanges()) {
      return Status::InvalidArgument(
          "workspace has pending changes; write back before saving");
    }
    std::ostringstream components, relationships;
    WriteComponentsPayload(ws, components);
    WriteRelationshipsPayload(ws, relationships);
    if (format_version == 1) {
      out << kMagicV1 << "\n"
          << components.str() << relationships.str() << "END\n";
    } else if (format_version == kCacheFormatVersion) {
      std::vector<FileSection> sections(2);
      sections[0].name = "COMPONENTS";
      sections[0].records = ws.components_.size();
      sections[0].payload = components.str();
      sections[1].name = "RELATIONSHIPS";
      sections[1].records = ws.relationships_.size();
      sections[1].payload = relationships.str();
      WriteSectionedFile(out, kMagicV2, sections);
    } else {
      return Status::InvalidArgument("unsupported cache format version " +
                                     std::to_string(format_version));
    }
    return out.good() ? Status::Ok()
                      : Status::IoError("write to cache stream failed");
  }

  static Status ParseComponentsBody(std::istream& in, Workspace* ws) {
    std::string word;
    size_t n_components;
    if (!(in >> word >> n_components) || word != "COMPONENTS") {
      return Status::IoError("expected COMPONENTS");
    }
    for (size_t c = 0; c < n_components; ++c) {
      std::string name;
      size_t ncols, nrows;
      if (!(in >> word >> name >> ncols >> nrows) || word != "COMPONENT") {
        return Status::IoError("expected COMPONENT");
      }
      Schema schema;
      for (size_t i = 0; i < ncols; ++i) {
        std::string col_name;
        int type;
        if (!(in >> word >> col_name >> type) || word != "COL") {
          return Status::IoError("expected COL");
        }
        if (type < 0 || type > static_cast<int>(DataType::kBool)) {
          return Status::IoError("cached column " + col_name +
                                 " has invalid type tag " +
                                 std::to_string(type));
        }
        schema.AddColumn(Column{col_name, static_cast<DataType>(type)});
      }
      auto comp = std::make_unique<ComponentTable>(
          name, std::move(schema), static_cast<int>(ws->components_.size()));
      for (size_t r = 0; r < nrows; ++r) {
        TupleId tid;
        if (!(in >> word >> tid) || word != "ROW") {
          return Status::IoError("expected ROW");
        }
        Tuple values;
        values.reserve(ncols);
        for (size_t i = 0; i < ncols; ++i) {
          XNFDB_ASSIGN_OR_RETURN(Value v, ReadValue(in));
          values.push_back(std::move(v));
        }
        comp->AddRow(tid, std::move(values));
      }
      ws->components_.push_back(std::move(comp));
    }
    return Status::Ok();
  }

  static Status ParseRelationshipsBody(std::istream& in, Workspace* ws) {
    std::string word;
    size_t n_rels;
    if (!(in >> word >> n_rels) || word != "RELATIONSHIPS") {
      return Status::IoError("expected RELATIONSHIPS");
    }
    struct PendingRel {
      std::string name;
      std::vector<std::string> partners;
      std::vector<std::vector<TupleId>> conns;
    };
    std::vector<PendingRel> pending;
    for (size_t r = 0; r < n_rels; ++r) {
      PendingRel p;
      size_t n_partners, n_conns;
      if (!(in >> word >> p.name >> n_partners >> n_conns) ||
          word != "RELATIONSHIP") {
        return Status::IoError("expected RELATIONSHIP");
      }
      for (size_t i = 0; i < n_partners; ++i) {
        std::string partner;
        if (!(in >> word >> partner) || word != "PARTNER") {
          return Status::IoError("expected PARTNER");
        }
        p.partners.push_back(std::move(partner));
      }
      for (size_t i = 0; i < n_conns; ++i) {
        if (!(in >> word) || word != "CONN") {
          return Status::IoError("expected CONN");
        }
        std::vector<TupleId> tids(n_partners);
        for (TupleId& t : tids) {
          if (!(in >> t)) {
            return Status::IoError("truncated CONN tuple ids");
          }
        }
        p.conns.push_back(std::move(tids));
      }
      pending.push_back(std::move(p));
    }
    // Create all relationship containers first (adjacency vectors are
    // indexed by relationship count), then resolve connections.
    for (PendingRel& p : pending) {
      ws->relationships_.push_back(std::make_unique<Relationship>(
          p.name, p.partners, static_cast<int>(ws->relationships_.size())));
    }
    for (size_t r = 0; r < pending.size(); ++r) {
      for (std::vector<TupleId>& tids : pending[r].conns) {
        XNFDB_RETURN_IF_ERROR(ws->AddConnection(ws->relationships_[r].get(),
                                                std::move(tids), false));
      }
    }
    return Status::Ok();
  }

  static Result<std::unique_ptr<Workspace>> Load(
      std::istream& in, const WorkspaceOptions& options) {
    std::string line;
    if (!std::getline(in, line)) {
      return Status::IoError("empty cache file");
    }
    std::unique_ptr<Workspace> ws(new Workspace(options));
    if (line == kMagicV1) {
      XNFDB_RETURN_IF_ERROR(ParseComponentsBody(in, ws.get()));
      XNFDB_RETURN_IF_ERROR(ParseRelationshipsBody(in, ws.get()));
      return ws;
    }
    if (line != kMagicV2) {
      return Status::IoError("bad cache file magic");
    }
    XNFDB_ASSIGN_OR_RETURN(std::vector<FileSection> sections,
                           ReadSectionedFile(in));
    if (sections.size() != 2 || sections[0].name != "COMPONENTS" ||
        sections[1].name != "RELATIONSHIPS") {
      return Status::IoError("cache file has unexpected sections");
    }
    std::istringstream components_in(sections[0].payload);
    XNFDB_RETURN_IF_ERROR(ParseComponentsBody(components_in, ws.get()));
    if (ws->components_.size() != sections[0].records) {
      return Status::IoError("COMPONENTS record count mismatch");
    }
    std::istringstream rels_in(sections[1].payload);
    XNFDB_RETURN_IF_ERROR(ParseRelationshipsBody(rels_in, ws.get()));
    if (ws->relationships_.size() != sections[1].records) {
      return Status::IoError("RELATIONSHIPS record count mismatch");
    }
    return ws;
  }
};

Status SaveWorkspace(const Workspace& workspace, std::ostream& out,
                     int format_version) {
  return CacheSerializer::Save(workspace, out, format_version);
}

Result<std::unique_ptr<Workspace>> LoadWorkspace(
    std::istream& in, const WorkspaceOptions& options) {
  return CacheSerializer::Load(in, options);
}

Status SaveWorkspaceToFile(const Workspace& workspace,
                           const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  std::ostringstream out;
  XNFDB_RETURN_IF_ERROR(SaveWorkspace(workspace, out));
  return AtomicallyWriteFile(env, path, out.str());
}

Result<std::unique_ptr<Workspace>> LoadWorkspaceFromFile(
    const std::string& path, const WorkspaceOptions& options, Env* env) {
  if (env == nullptr) env = Env::Default();
  std::string contents;
  XNFDB_RETURN_IF_ERROR(env->ReadFileToString(path, &contents));
  std::istringstream in(contents);
  return LoadWorkspace(in, options);
}

}  // namespace xnfdb
