#include "cache/writeback.h"

#include <chrono>
#include <functional>
#include <set>
#include <sstream>
#include <thread>

#include "common/crc32.h"
#include "common/str_util.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace xnfdb {

std::string SqlLiteral(const Value& v) {
  if (v.type() != DataType::kString) return v.ToString();
  std::string out = "'";
  for (char c : v.AsString()) {
    if (c == '\'') out += '\'';  // quote doubling
    out += c;
  }
  out += "'";
  return out;
}

const ast::XnfDef* WriteBackPlanner::FindDef(const std::string& name) const {
  for (const ast::XnfDef& def : definition_->defs) {
    if (IdentEquals(def.name, name)) return &def;
  }
  return nullptr;
}

Result<ComponentPlan> WriteBackPlanner::AnalyzeComponent(
    const ComponentTable& component) {
  ComponentPlan plan;
  plan.component = component.name();
  const ast::XnfDef* def = FindDef(component.name());
  if (def == nullptr || def->kind != ast::XnfDef::Kind::kTable) {
    plan.reason = "no component-table definition found";
    return plan;
  }

  // Determine the base table and the select-list mapping.
  std::string base_table;
  // base column name per selected output column; empty vector = identity.
  std::vector<std::string> select_map;
  if (!def->base_table.empty()) {
    base_table = def->base_table;
  } else {
    const ast::SelectStmt& sel = *def->select;
    if (sel.from.size() != 1 || sel.from[0].subquery != nullptr) {
      plan.reason =
          "component view joins several tables; join views are not "
          "updatable (Sect. 2)";
      return plan;
    }
    if (sel.distinct || !sel.group_by.empty()) {
      plan.reason = "component view uses DISTINCT/GROUP BY";
      return plan;
    }
    base_table = sel.from[0].table;
    bool star_only = true;
    for (const ast::SelectItem& item : sel.items) {
      if (!item.is_star) star_only = false;
    }
    if (!star_only) {
      for (const ast::SelectItem& item : sel.items) {
        if (item.is_star) {
          plan.reason = "mixed '*' and explicit select list";
          return plan;
        }
        if (item.expr->kind != ast::Expr::Kind::kColumnRef) {
          plan.reason = "computed select-list column '" +
                        item.expr->ToString() + "' is not updatable";
          return plan;
        }
        select_map.push_back(
            static_cast<const ast::ColumnRef&>(*item.expr).column);
      }
    }
  }

  Result<Table*> base = db_->catalog().GetTable(base_table);
  if (!base.ok()) {
    plan.reason = "base table " + base_table + " not found";
    return plan;
  }
  plan.base_table = base.value()->name();
  const Schema& base_schema = base.value()->schema();

  // Map each cached (projected) column to a base column.
  for (size_t i = 0; i < component.schema().size(); ++i) {
    const std::string& cached_name = component.schema().column(i).name;
    std::string base_name = cached_name;
    if (!select_map.empty()) {
      // The cached name is the select-list output name; find its source.
      int found = -1;
      const ast::SelectStmt& sel = *def->select;
      for (size_t si = 0; si < sel.items.size(); ++si) {
        const ast::SelectItem& item = sel.items[si];
        std::string out_name =
            !item.alias.empty()
                ? item.alias
                : static_cast<const ast::ColumnRef&>(*item.expr).column;
        if (IdentEquals(out_name, cached_name)) {
          found = static_cast<int>(si);
          break;
        }
      }
      if (found < 0) {
        plan.reason = "cached column " + cached_name +
                      " not traceable to a base column";
        return plan;
      }
      base_name = select_map[found];
    }
    int base_col = base_schema.FindColumn(base_name);
    if (base_col < 0) {
      plan.reason = "cached column " + cached_name + " has no base column";
      return plan;
    }
    plan.column_map.push_back(base_col);
  }

  int pk = db_->catalog().PrimaryKeyColumn(plan.base_table);
  if (pk >= 0) {
    for (size_t i = 0; i < plan.column_map.size(); ++i) {
      if (plan.column_map[i] == pk) plan.key_cached_col = static_cast<int>(i);
    }
  }
  plan.updatable = true;
  return plan;
}

namespace {

// Matches `qualifier.column` column references.
const ast::ColumnRef* AsColRef(const ast::Expr& e) {
  if (e.kind != ast::Expr::Kind::kColumnRef) return nullptr;
  return static_cast<const ast::ColumnRef*>(&e);
}

// Collects the top-level equality conjuncts of a predicate.
void CollectEqualities(const ast::Expr* e,
                       std::vector<const ast::Binary*>* out, bool* clean) {
  if (e == nullptr) return;
  if (e->kind == ast::Expr::Kind::kBinary) {
    const auto& b = static_cast<const ast::Binary&>(*e);
    if (b.op == "AND") {
      CollectEqualities(b.lhs.get(), out, clean);
      CollectEqualities(b.rhs.get(), out, clean);
      return;
    }
    if (b.op == "=") {
      out->push_back(&b);
      return;
    }
  }
  *clean = false;  // predicate beyond a conjunction of equalities
}

}  // namespace

Result<RelationshipPlan> WriteBackPlanner::AnalyzeRelationship(
    const Relationship& rel, Workspace* workspace) {
  RelationshipPlan plan;
  plan.relationship = rel.name();
  const ast::XnfDef* def = FindDef(rel.name());
  if (def == nullptr || def->kind != ast::XnfDef::Kind::kRelationship) {
    plan.reason = "no relationship definition found";
    return plan;
  }
  const ast::RelateDef& rd = def->relate;
  if (rd.children.size() != 1) {
    plan.reason = "n-ary relationships are not updatable";
    return plan;
  }

  // Partner component plans give us base tables and cached key columns.
  XNFDB_ASSIGN_OR_RETURN(ComponentTable * parent_comp,
                         workspace->component(rd.parent));
  XNFDB_ASSIGN_OR_RETURN(ComponentTable * child_comp,
                         workspace->component(rd.children[0]));
  XNFDB_ASSIGN_OR_RETURN(ComponentPlan parent_plan,
                         AnalyzeComponent(*parent_comp));
  XNFDB_ASSIGN_OR_RETURN(ComponentPlan child_plan,
                         AnalyzeComponent(*child_comp));
  if (!parent_plan.updatable || !child_plan.updatable) {
    plan.reason = "partner component is not updatable";
    return plan;
  }

  bool clean = true;
  std::vector<const ast::Binary*> eqs;
  CollectEqualities(rd.where.get(), &eqs, &clean);
  if (!clean) {
    plan.reason =
        "relationship predicate is richer than a conjunction of "
        "equalities; not updatable (Sect. 2)";
    return plan;
  }

  // Resolves a qualifier to parent/child/using.
  auto side_of = [&](const std::string& qualifier) -> int {
    if (IdentEquals(qualifier, rd.parent) ||
        (!rd.role.empty() && IdentEquals(qualifier, rd.role))) {
      return 0;  // parent
    }
    if (IdentEquals(qualifier, rd.children[0])) return 1;  // child
    for (const ast::TableRef& u : rd.using_tables) {
      if (IdentEquals(qualifier, u.BindingName())) return 2;  // connect table
    }
    return -1;
  };
  auto cached_col = [](const ComponentTable& comp,
                       const std::string& name) -> int {
    return comp.schema().FindColumn(name);
  };

  if (rd.using_tables.empty()) {
    // Foreign-key form: parent.key = child.fk
    if (eqs.size() != 1) {
      plan.reason = "foreign-key relationship needs exactly one equality";
      return plan;
    }
    const ast::ColumnRef* a = AsColRef(*eqs[0]->lhs);
    const ast::ColumnRef* b = AsColRef(*eqs[0]->rhs);
    if (a == nullptr || b == nullptr) {
      plan.reason = "relationship predicate is not column = column";
      return plan;
    }
    const ast::ColumnRef* parent_ref = nullptr;
    const ast::ColumnRef* child_ref = nullptr;
    for (const ast::ColumnRef* ref : {a, b}) {
      int side = side_of(ref->qualifier);
      if (side == 0) parent_ref = ref;
      if (side == 1) child_ref = ref;
    }
    if (parent_ref == nullptr || child_ref == nullptr) {
      plan.reason = "predicate does not relate parent to child";
      return plan;
    }
    // The FK must be declared on the child column (paper: "edno in EMP is a
    // foreign key").
    const ForeignKey* fk = db_->catalog().FindForeignKey(
        child_plan.base_table, child_ref->column);
    if (fk == nullptr) {
      plan.reason = "no declared foreign key on " + child_plan.base_table +
                    "." + child_ref->column;
      return plan;
    }
    plan.kind = RelationshipPlan::Kind::kForeignKey;
    plan.child_base = child_plan.base_table;
    plan.child_fk_column = ToUpperIdent(child_ref->column);
    plan.parent_key_cached_col = cached_col(*parent_comp, parent_ref->column);
    plan.child_key_cached_col = child_plan.key_cached_col;
    if (plan.child_key_cached_col >= 0) {
      int base_col = child_plan.column_map[plan.child_key_cached_col];
      Result<Table*> base = db_->catalog().GetTable(child_plan.base_table);
      plan.child_key_base_column =
          base.value()->schema().column(base_col).name;
    }
    if (plan.parent_key_cached_col < 0 || plan.child_key_cached_col < 0) {
      plan.kind = RelationshipPlan::Kind::kNotUpdatable;
      plan.reason = "key columns are projected out of the cache";
      return plan;
    }
    return plan;
  }

  // Connect-table form: parent.key = ct.c1 AND ct.c2 = child.key.
  if (rd.using_tables.size() != 1 || eqs.size() != 2) {
    plan.reason = "connect-table relationship needs one USING table and "
                  "two equalities";
    return plan;
  }
  std::string ct_table = rd.using_tables[0].table;
  for (const ast::Binary* eq : eqs) {
    const ast::ColumnRef* a = AsColRef(*eq->lhs);
    const ast::ColumnRef* b = AsColRef(*eq->rhs);
    if (a == nullptr || b == nullptr) {
      plan.reason = "connect-table predicate is not column = column";
      return plan;
    }
    const ast::ColumnRef* ct_ref = nullptr;
    const ast::ColumnRef* other = nullptr;
    if (side_of(a->qualifier) == 2) {
      ct_ref = a;
      other = b;
    } else if (side_of(b->qualifier) == 2) {
      ct_ref = b;
      other = a;
    } else {
      plan.reason = "equality does not involve the connect table";
      return plan;
    }
    int other_side = side_of(other->qualifier);
    if (other_side == 0) {
      plan.ct_parent_column = ToUpperIdent(ct_ref->column);
      plan.ct_parent_cached_col = cached_col(*parent_comp, other->column);
    } else if (other_side == 1) {
      plan.ct_child_column = ToUpperIdent(ct_ref->column);
      plan.ct_child_cached_col = cached_col(*child_comp, other->column);
    } else {
      plan.reason = "equality does not relate the connect table to a partner";
      return plan;
    }
  }
  if (plan.ct_parent_column.empty() || plan.ct_child_column.empty() ||
      plan.ct_parent_cached_col < 0 || plan.ct_child_cached_col < 0) {
    plan.reason = "connect-table mapping incomplete (projected-out keys?)";
    return plan;
  }
  plan.kind = RelationshipPlan::Kind::kConnectTable;
  plan.connect_table = ToUpperIdent(ct_table);
  return plan;
}

Result<std::vector<std::string>> WriteBackPlanner::Plan(
    Workspace* workspace) {
  std::vector<std::string> statements;
  auto run = [&](const std::string& sql) -> Status {
    statements.push_back(sql);
    return Status::Ok();
  };

  // Builds the WHERE clause addressing one cached row in its base table.
  auto row_predicate = [&](const ComponentPlan& plan, const CachedRow* row,
                           const Table& base) -> std::string {
    const Tuple& addr = row->dirty ? row->original : row->values;
    if (plan.key_cached_col >= 0) {
      return base.schema()
                 .column(plan.column_map[plan.key_cached_col])
                 .name +
             " = " + SqlLiteral(addr[plan.key_cached_col]);
    }
    std::string where;
    for (size_t i = 0; i < plan.column_map.size(); ++i) {
      if (!where.empty()) where += " AND ";
      where += base.schema().column(plan.column_map[i]).name + " = " +
               SqlLiteral(addr[i]);
    }
    return where;
  };

  // Component changes.
  for (size_t ci = 0; ci < workspace->component_count(); ++ci) {
    ComponentTable* comp = workspace->component(ci);
    // Check whether this component has pending changes at all before
    // requiring updatability.
    bool pending = false;
    for (size_t i = 0; i < comp->size(); ++i) {
      const CachedRow* row = comp->row(i);
      if (row->dirty || row->inserted || row->deleted) pending = true;
    }
    if (!pending) continue;

    XNFDB_ASSIGN_OR_RETURN(ComponentPlan plan, AnalyzeComponent(*comp));
    if (!plan.updatable) {
      return Status::InvalidArgument("component " + comp->name() +
                                     " is not updatable: " + plan.reason);
    }
    XNFDB_ASSIGN_OR_RETURN(Table * base,
                           db_->catalog().GetTable(plan.base_table));

    for (size_t i = 0; i < comp->size(); ++i) {
      CachedRow* row = comp->row(i);
      if (row->inserted && !row->deleted) {
        // INSERT: full base row, NULL for columns outside the cache.
        std::vector<std::string> values(base->schema().size(), "NULL");
        for (size_t c = 0; c < plan.column_map.size(); ++c) {
          values[plan.column_map[c]] = SqlLiteral(row->values[c]);
        }
        XNFDB_RETURN_IF_ERROR(run("INSERT INTO " + plan.base_table +
                                  " VALUES (" + Join(values, ", ") + ")"));
      } else if (row->dirty && !row->deleted && !row->inserted) {
        std::vector<std::string> sets;
        for (size_t c = 0; c < plan.column_map.size(); ++c) {
          if (!(row->values[c] == row->original[c])) {
            sets.push_back(base->schema().column(plan.column_map[c]).name +
                           " = " + SqlLiteral(row->values[c]));
          }
        }
        if (sets.empty()) continue;
        XNFDB_RETURN_IF_ERROR(run("UPDATE " + plan.base_table + " SET " +
                                  Join(sets, ", ") + " WHERE " +
                                  row_predicate(plan, row, *base)));
      }
    }
  }

  // Connects / disconnects.
  for (size_t ri = 0; ri < workspace->relationship_count(); ++ri) {
    Relationship* rel = workspace->relationship(ri);
    bool pending = false;
    for (size_t i = 0; i < rel->size(); ++i) {
      const CachedConnection* conn = rel->connection(i);
      if (conn->inserted || conn->deleted) pending = true;
    }
    if (!pending) continue;

    XNFDB_ASSIGN_OR_RETURN(RelationshipPlan plan,
                           AnalyzeRelationship(*rel, workspace));
    if (plan.kind == RelationshipPlan::Kind::kNotUpdatable) {
      return Status::InvalidArgument("relationship " + rel->name() +
                                     " is not updatable: " + plan.reason);
    }
    for (size_t i = 0; i < rel->size(); ++i) {
      CachedConnection* conn = rel->connection(i);
      if (conn->inserted == conn->deleted) continue;  // net no-op or stored
      const CachedRow* parent = conn->partners[0];
      const CachedRow* child = conn->partners[1];
      if (plan.kind == RelationshipPlan::Kind::kForeignKey) {
        if (conn->inserted) {
          XNFDB_RETURN_IF_ERROR(
              run("UPDATE " + plan.child_base + " SET " +
                  plan.child_fk_column + " = " +
                  SqlLiteral(parent->values[plan.parent_key_cached_col]) +
                  " WHERE " + plan.child_key_base_column + " = " +
                  SqlLiteral(child->values[plan.child_key_cached_col])));
        } else {
          XNFDB_RETURN_IF_ERROR(
              run("UPDATE " + plan.child_base + " SET " +
                  plan.child_fk_column + " = NULL WHERE " +
                  plan.child_key_base_column + " = " +
                  SqlLiteral(child->values[plan.child_key_cached_col])));
        }
      } else {  // connect table
        Result<Table*> ct = db_->catalog().GetTable(plan.connect_table);
        if (!ct.ok()) return ct.status();
        std::string parent_value =
            SqlLiteral(parent->values[plan.ct_parent_cached_col]);
        std::string child_value =
            SqlLiteral(child->values[plan.ct_child_cached_col]);
        if (conn->inserted) {
          std::vector<std::string> values(ct.value()->schema().size(),
                                          "NULL");
          int pc = ct.value()->schema().FindColumn(plan.ct_parent_column);
          int cc = ct.value()->schema().FindColumn(plan.ct_child_column);
          values[pc] = parent_value;
          values[cc] = child_value;
          XNFDB_RETURN_IF_ERROR(run("INSERT INTO " + plan.connect_table +
                                    " VALUES (" + Join(values, ", ") + ")"));
        } else {
          XNFDB_RETURN_IF_ERROR(run("DELETE FROM " + plan.connect_table +
                                    " WHERE " + plan.ct_parent_column +
                                    " = " + parent_value + " AND " +
                                    plan.ct_child_column + " = " +
                                    child_value));
        }
      }
    }
  }

  // Row deletes last (their connections were handled above).
  for (size_t ci = 0; ci < workspace->component_count(); ++ci) {
    ComponentTable* comp = workspace->component(ci);
    for (size_t i = 0; i < comp->size(); ++i) {
      CachedRow* row = comp->row(i);
      if (!row->deleted || row->inserted || row->deleted_synced) continue;
      XNFDB_ASSIGN_OR_RETURN(ComponentPlan plan, AnalyzeComponent(*comp));
      if (!plan.updatable) {
        return Status::InvalidArgument("component " + comp->name() +
                                       " is not updatable: " + plan.reason);
      }
      XNFDB_ASSIGN_OR_RETURN(Table * base,
                             db_->catalog().GetTable(plan.base_table));
      XNFDB_RETURN_IF_ERROR(run("DELETE FROM " + plan.base_table + " WHERE " +
                                row_predicate(plan, row, *base)));
    }
  }

  return statements;
}

namespace {

constexpr char kJournalMagic[] = "XNFJOURNAL 1";

// xorshift64: tiny PRNG for backoff jitter. State must be non-zero.
uint64_t NextJitter(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

// Runs `op`, retrying transient kIoError failures up to `max_retries` extra
// times with exponential backoff. Other error codes are not retried.
// Each sleep is "equal jitter": half the exponential delay guaranteed, the
// other half drawn uniformly, so many callers retrying off one shared fault
// spread out instead of synchronizing. Every retry counts under
// writeback.retries (with the milliseconds actually slept under
// writeback.backoff_ms); an operation that stays failed after the last
// retry counts under writeback.failures.
Status RetryTransient(const WriteBackOptions& options,
                      const std::function<Status()>& op) {
  static obs::Counter* retries =
      obs::MetricsRegistry::Default().GetCounter("writeback.retries");
  static obs::Counter* failures =
      obs::MetricsRegistry::Default().GetCounter("writeback.failures");
  static obs::Counter* backoff_total =
      obs::MetricsRegistry::Default().GetCounter("writeback.backoff_ms");
  Status status = op();
  uint64_t rng = options.jitter_seed != 0
                     ? options.jitter_seed
                     : static_cast<uint64_t>(std::chrono::steady_clock::now()
                                                 .time_since_epoch()
                                                 .count()) |
                           1;
  int backoff_ms = options.backoff_initial_ms;
  for (int attempt = 0;
       attempt < options.max_retries && !status.ok() &&
       status.code() == StatusCode::kIoError;
       ++attempt) {
    if (backoff_ms > 0) {
      const int half = backoff_ms / 2;
      const int sleep_ms =
          backoff_ms - half +
          (half > 0 ? static_cast<int>(NextJitter(&rng) %
                                       static_cast<uint64_t>(half + 1))
                    : 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff_total->Increment(sleep_ms);
    }
    backoff_ms *= 2;
    retries->Increment();
    obs::FlightRecorder::Default().Record("writeback", "warn",
                                          "transient failure, retrying",
                                          status.message());
    status = op();
  }
  if (!status.ok()) {
    failures->Increment();
    obs::FlightRecorder::Default().Record("writeback", "error",
                                          "operation failed after retries",
                                          status.message());
  }
  return status;
}

// Journal file: magic, statement count + payload CRC, then one
// length-prefixed statement per line.
std::string RenderJournal(const std::vector<std::string>& statements) {
  std::ostringstream payload;
  for (const std::string& sql : statements) {
    payload << sql.size() << " " << sql << "\n";
  }
  std::ostringstream out;
  out << kJournalMagic << "\n"
      << "STATEMENTS " << statements.size() << " "
      << Crc32Hex(Crc32(payload.str())) << "\n"
      << payload.str() << "END\n";
  return out.str();
}

}  // namespace

Result<std::vector<std::string>> LoadWriteBackJournal(const std::string& path,
                                                      Env* env) {
  if (env == nullptr) env = Env::Default();
  std::string contents;
  XNFDB_RETURN_IF_ERROR(env->ReadFileToString(path, &contents));
  std::istringstream in(contents);
  std::string line;
  if (!std::getline(in, line) || line != kJournalMagic) {
    return Status::IoError("bad write-back journal magic");
  }
  std::string word, crc_hex;
  size_t count;
  if (!(in >> word >> count >> crc_hex) || word != "STATEMENTS") {
    return Status::IoError("malformed journal header");
  }
  in.get();  // newline after the header
  std::istream::pos_type payload_start = in.tellg();
  std::vector<std::string> statements;
  for (size_t i = 0; i < count; ++i) {
    size_t len;
    if (!(in >> len)) return Status::IoError("truncated journal");
    in.get();  // the separating space
    int64_t remaining = StreamRemainingBytes(in);
    if (remaining >= 0 && static_cast<int64_t>(len) > remaining) {
      return Status::IoError("journal statement length " +
                             std::to_string(len) + " exceeds file size");
    }
    std::string sql(len, '\0');
    in.read(sql.data(), static_cast<std::streamsize>(len));
    if (static_cast<size_t>(in.gcount()) != len) {
      return Status::IoError("truncated journal statement");
    }
    if (in.get() != '\n') {
      return Status::IoError("malformed journal statement framing");
    }
    statements.push_back(std::move(sql));
  }
  std::istream::pos_type payload_end = in.tellg();
  // eof() after a successful getline means the trailing newline is missing.
  if (!std::getline(in, line) || line != "END" || in.eof()) {
    return Status::IoError("journal missing END terminator");
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::IoError("trailing data after journal END terminator");
  }
  std::string_view payload(contents.data() + payload_start,
                           static_cast<size_t>(payload_end - payload_start));
  uint32_t crc = Crc32(payload);
  if (Crc32Hex(crc) != crc_hex) {
    return Status::IoError("journal CRC mismatch");
  }
  return statements;
}

Result<std::vector<std::string>> WriteBackPlanner::Apply(
    Workspace* workspace) {
  XNFDB_ASSIGN_OR_RETURN(std::vector<std::string> statements,
                         Plan(workspace));
  Env* env = options_.env != nullptr ? options_.env : Env::Default();

  // 1. Journal the batch before touching the server, so a failure at any
  //    later point leaves a durable record of the intended statements
  //    alongside the still-pending workspace marks.
  if (!options_.journal_path.empty()) {
    const std::string journal = RenderJournal(statements);
    XNFDB_RETURN_IF_ERROR(RetryTransient(options_, [&] {
      return AtomicallyWriteFile(env, options_.journal_path, journal);
    }));
  }

  // 2. Execute, absorbing transient server failures with bounded retry.
  for (const std::string& sql : statements) {
    XNFDB_RETURN_IF_ERROR(RetryTransient(options_, [&]() -> Status {
      Result<Database::Outcome> r = db_->Execute(sql);
      return r.ok() ? Status::Ok() : r.status();
    }));
  }

  // 3. Commit locally, then retire the journal. Removal failure leaves a
  //    stale journal of already-applied statements behind; surface it
  //    (marks are already cleared, so a retry will not double-apply).
  workspace->ClearPendingChanges();
  if (!options_.journal_path.empty()) {
    Status removed = RetryTransient(
        options_, [&] { return env->RemoveFile(options_.journal_path); });
    if (!removed.ok()) {
      return Status::IoError(
          "write-back applied, but stale journal could not be removed: " +
          removed.message());
    }
  }
  return statements;
}

}  // namespace xnfdb
