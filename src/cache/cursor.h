// Cursors over the CO cache (paper Sect. 2 / 5.2).
//
// "XNF API provides two kinds of cursors that support navigation along the
// tuples of a node table (independent cursors) as well as navigation from
// parent to child tuples along relationship edges (dependent cursors)."
//
// Path expressions (Sect. 2) are evaluated over the cached structure:
// "a path expression consists of a sequence of component tables (and
// relationships) ... it denotes a subset of the tuples of its target table:
// all these tuples are to be reachable from some (root) tuples through the
// path defined."

#ifndef XNFDB_CACHE_CURSOR_H_
#define XNFDB_CACHE_CURSOR_H_

#include <string>
#include <vector>

#include "cache/workspace.h"
#include "common/status.h"

namespace xnfdb {

// Browses all live rows of one component table.
class IndependentCursor {
 public:
  explicit IndependentCursor(ComponentTable* component)
      : component_(component) {}

  // Advances to the next live row; false at end.
  bool Next();
  CachedRow* row() const { return current_; }
  void Reset() {
    pos_ = 0;
    current_ = nullptr;
  }

 private:
  ComponentTable* component_;
  size_t pos_ = 0;
  CachedRow* current_ = nullptr;
};

// Navigates from an anchor row to its children (or parents) along one
// relationship. Respects the workspace's swizzling mode: with swizzling the
// hop is a pointer dereference; without it, a tuple-id hash lookup.
class DependentCursor {
 public:
  enum class Direction { kChildren, kParents };

  DependentCursor(Workspace* workspace, Relationship* relationship,
                  const CachedRow* anchor,
                  Direction direction = Direction::kChildren)
      : workspace_(workspace),
        relationship_(relationship),
        direction_(direction) {
    Rebind(anchor);
  }

  bool Next();
  CachedRow* row() const { return current_; }
  void Reset() {
    pos_ = 0;
    current_ = nullptr;
  }
  // Rebinds to a new anchor, restarting iteration. Cheap; intended for hot
  // traversal loops.
  void Rebind(const CachedRow* anchor);

 private:
  Workspace* workspace_;
  Relationship* relationship_;
  Direction direction_;
  const CachedRow* anchor_ = nullptr;
  size_t pos_ = 0;
  CachedRow* current_ = nullptr;

  // Resolved per Rebind:
  const std::vector<CachedRow*>* swizzled_ = nullptr;
  const std::vector<TupleId>* tids_ = nullptr;
  ComponentTable* tid_component_ = nullptr;  // unswizzled child/parent comp
};

// Evaluates a dotted path expression starting with a component name, e.g.
// "XDEPT.EMPLOYMENT.XEMP.EMPPROPERTY.XSKILLS". Returns the distinct target
// rows reachable from all rows of the leading component.
Result<std::vector<CachedRow*>> EvalPath(Workspace* workspace,
                                         const std::string& path);

// Same, but anchored at one starting row; `path` must begin with a
// relationship name ("EMPLOYMENT.XEMP...").
Result<std::vector<CachedRow*>> EvalPathFrom(Workspace* workspace,
                                             CachedRow* start,
                                             const std::string& path);

}  // namespace xnfdb

#endif  // XNFDB_CACHE_CURSOR_H_
