// XNFCache: the client-side entry point of the XNF API (paper Sect. 5.2).
//
// "There is a public method, called evaluate, which can take an XNF query
// as input and construct an instance of an XNFCache by sending a request to
// the database server, loading the catalog component, and converting the
// heterogeneous stream of tuples delivered by the server into the
// main-memory representation. Access is provided through cursor objects."

#ifndef XNFDB_CACHE_XNF_CACHE_H_
#define XNFDB_CACHE_XNF_CACHE_H_

#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "cache/cursor.h"
#include "cache/workspace.h"
#include "cache/writeback.h"
#include "common/env.h"
#include "common/status.h"
#include "parser/ast.h"

namespace xnfdb {

// Defined outside XNFCache so its default member initializers are complete
// before the class body's `= {}` default arguments use them.
struct XNFCacheOptions {
  WorkspaceOptions workspace;
  CompileOptions compile;
  ExecOptions exec;
  // File I/O environment for SaveTo/LoadFrom; the database's env when null.
  Env* env = nullptr;
};

class XNFCache {
 public:
  using Options = XNFCacheOptions;

  // Evaluates `query` — an OUT OF query or the name of a stored XNF view —
  // against `db` and loads the result into a fresh cache. `db` must outlive
  // the cache.
  static Result<std::unique_ptr<XNFCache>> Evaluate(
      Database* db, const std::string& query, const Options& options = {});

  Workspace& workspace() { return *workspace_; }
  const ast::XnfQuery& definition() const { return *definition_; }
  Database* database() { return db_; }

  // --- cursors --------------------------------------------------------------
  Result<IndependentCursor> OpenCursor(const std::string& component);
  Result<DependentCursor> OpenDependentCursor(
      const std::string& relationship, CachedRow* anchor,
      DependentCursor::Direction direction =
          DependentCursor::Direction::kChildren);
  // Path-expression navigation ("XDEPT.EMPLOYMENT.XEMP...").
  Result<std::vector<CachedRow*>> Path(const std::string& path);

  // --- updates --------------------------------------------------------------
  // Local mutation helpers (delegating to the workspace), plus write-back.
  Status Update(CachedRow* row, const std::string& column, Value v);
  Result<CachedRow*> Insert(const std::string& component, Tuple values);
  Status Delete(CachedRow* row) { return workspace_->DeleteRow(row); }
  Status Connect(const std::string& relationship, CachedRow* parent,
                 CachedRow* child) {
    return workspace_->Connect(relationship, parent, child);
  }
  Status Disconnect(const std::string& relationship, CachedRow* parent,
                    CachedRow* child) {
    return workspace_->Disconnect(relationship, parent, child);
  }

  // Transfers pending local changes back to the server (Sect. 3). Returns
  // the SQL statements that were executed. `options` selects the journal
  // and retry behavior (see WriteBackOptions); its null env defaults to
  // this cache's env.
  Result<std::vector<std::string>> WriteBack(WriteBackOptions options = {});

  // Re-evaluates the view, replacing the workspace (after write-back).
  Status Refresh();

  // --- persistence ----------------------------------------------------------
  Status SaveTo(const std::string& path);
  // Restores a cache saved with SaveTo. `query` must be the view the cache
  // was built from (needed for write-back analysis).
  static Result<std::unique_ptr<XNFCache>> LoadFrom(
      Database* db, const std::string& path, const std::string& query,
      const Options& options = {});

 private:
  XNFCache(Database* db, std::unique_ptr<ast::XnfQuery> definition,
           std::unique_ptr<Workspace> workspace, Options options)
      : db_(db),
        definition_(std::move(definition)),
        workspace_(std::move(workspace)),
        options_(options) {}

  static Result<std::unique_ptr<ast::XnfQuery>> ResolveQuery(
      Database* db, const std::string& query);

  Database* db_;
  std::unique_ptr<ast::XnfQuery> definition_;
  std::unique_ptr<Workspace> workspace_;
  Options options_;
};

}  // namespace xnfdb

#endif  // XNFDB_CACHE_XNF_CACHE_H_
