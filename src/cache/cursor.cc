#include "cache/cursor.h"

#include <set>

#include "common/str_util.h"
#include "obs/metrics.h"

namespace xnfdb {

namespace {

// Stable handle, looked up once per process (see obs/metrics.h).
obs::Counter* FetchCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("cache.cursor.fetches");
  return c;
}

}  // namespace

bool IndependentCursor::Next() {
  while (pos_ < component_->size()) {
    CachedRow* row = component_->row(pos_++);
    if (row->deleted) continue;
    current_ = row;
    FetchCounter()->Increment();
    return true;
  }
  current_ = nullptr;
  return false;
}

void DependentCursor::Rebind(const CachedRow* anchor) {
  anchor_ = anchor;
  pos_ = 0;
  current_ = nullptr;
  swizzled_ = nullptr;
  tids_ = nullptr;
  tid_component_ = nullptr;
  if (anchor_ == nullptr) return;
  if (workspace_->options().swizzle) {
    swizzled_ = direction_ == Direction::kChildren
                    ? workspace_->SwizzledChildren(anchor_,
                                                   relationship_->index())
                    : workspace_->SwizzledParents(anchor_,
                                                  relationship_->index());
    return;
  }
  // Unswizzled navigation: tuple-id lists + hash lookups. Only binary
  // relationships can resolve the partner component unambiguously.
  if (relationship_->partner_names().size() != 2) return;
  const std::string& comp_name =
      direction_ == Direction::kChildren ? relationship_->partner_names()[1]
                                         : relationship_->partner_names()[0];
  Result<ComponentTable*> comp = workspace_->component(comp_name);
  if (!comp.ok()) return;
  tid_component_ = comp.value();
  tids_ = direction_ == Direction::kChildren
              ? relationship_->ChildTids(anchor_->tid)
              : relationship_->ParentTids(anchor_->tid);
}

bool DependentCursor::Next() {
  if (swizzled_ != nullptr) {
    static obs::Counter* swizzled_steps =
        obs::MetricsRegistry::Default().GetCounter(
            "cache.cursor.swizzled_steps");
    while (pos_ < swizzled_->size()) {
      CachedRow* row = (*swizzled_)[pos_++];
      swizzled_steps->Increment();
      if (row->deleted) continue;
      current_ = row;
      FetchCounter()->Increment();
      return true;
    }
    current_ = nullptr;
    return false;
  }
  if (tids_ != nullptr) {
    // Unswizzled navigation pays a hash lookup per step; FindByTid counts
    // it under cache.lookup.{hits,misses}.
    while (pos_ < tids_->size()) {
      CachedRow* row = tid_component_->FindByTid((*tids_)[pos_++]);
      if (row == nullptr || row->deleted) continue;
      current_ = row;
      FetchCounter()->Increment();
      return true;
    }
  }
  current_ = nullptr;
  return false;
}

namespace {

Result<std::vector<CachedRow*>> WalkPath(Workspace* workspace,
                                         std::vector<CachedRow*> frontier,
                                         const std::vector<std::string>& steps,
                                         size_t step_idx,
                                         const std::string& current_comp) {
  std::string comp_name = current_comp;
  std::vector<CachedRow*> current = std::move(frontier);
  size_t i = step_idx;
  while (i < steps.size()) {
    // Expect: relationship, then its child component.
    XNFDB_ASSIGN_OR_RETURN(Relationship * rel,
                           workspace->relationship(steps[i]));
    if (!IdentEquals(rel->parent_name(), comp_name)) {
      return Status::InvalidArgument(
          "path step " + steps[i] + " does not start at component " +
          comp_name);
    }
    if (i + 1 >= steps.size()) {
      return Status::InvalidArgument(
          "path expression must end with a component name");
    }
    const std::string& target = steps[i + 1];
    bool is_child = false;
    for (const std::string& c : rel->partner_names()) {
      if (IdentEquals(c, target)) is_child = true;
    }
    if (!is_child) {
      return Status::InvalidArgument("component " + target +
                                     " is not a partner of relationship " +
                                     rel->name());
    }
    XNFDB_ASSIGN_OR_RETURN(ComponentTable * target_comp,
                           workspace->component(target));
    std::set<CachedRow*> next;
    for (CachedRow* row : current) {
      DependentCursor cursor(workspace, rel, row);
      while (cursor.Next()) {
        if (cursor.row()->component == target_comp) next.insert(cursor.row());
      }
    }
    current.assign(next.begin(), next.end());
    comp_name = target;
    i += 2;
  }
  return current;
}

}  // namespace

Result<std::vector<CachedRow*>> EvalPath(Workspace* workspace,
                                         const std::string& path) {
  std::vector<std::string> steps = Split(path, '.');
  if (steps.empty()) return Status::InvalidArgument("empty path expression");
  for (std::string& s : steps) s = Trim(s);
  XNFDB_ASSIGN_OR_RETURN(ComponentTable * root, workspace->component(steps[0]));
  std::vector<CachedRow*> frontier;
  IndependentCursor cursor(root);
  while (cursor.Next()) frontier.push_back(cursor.row());
  return WalkPath(workspace, std::move(frontier), steps, 1, root->name());
}

Result<std::vector<CachedRow*>> EvalPathFrom(Workspace* workspace,
                                             CachedRow* start,
                                             const std::string& path) {
  std::vector<std::string> steps = Split(path, '.');
  if (steps.empty()) return Status::InvalidArgument("empty path expression");
  for (std::string& s : steps) s = Trim(s);
  return WalkPath(workspace, {start}, steps, 0, start->component->name());
}

}  // namespace xnfdb
