// Saving/restoring a workspace to/from disk (paper Sect. 5: "For long
// transactions, XNF allows the cache to be stored on disk and retrieved
// later, thereby protecting the cache from client machine's failure").
//
// The format is a line-oriented text format with length-prefixed strings,
// versioned for forward compatibility. Pending (not written back) changes
// are not serializable: save after WriteBack.

#ifndef XNFDB_CACHE_SERIALIZE_H_
#define XNFDB_CACHE_SERIALIZE_H_

#include <iostream>
#include <memory>
#include <string>

#include "cache/workspace.h"
#include "common/status.h"

namespace xnfdb {

Status SaveWorkspace(const Workspace& workspace, std::ostream& out);
Result<std::unique_ptr<Workspace>> LoadWorkspace(
    std::istream& in, const WorkspaceOptions& options = {});

Status SaveWorkspaceToFile(const Workspace& workspace,
                           const std::string& path);
Result<std::unique_ptr<Workspace>> LoadWorkspaceFromFile(
    const std::string& path, const WorkspaceOptions& options = {});

}  // namespace xnfdb

#endif  // XNFDB_CACHE_SERIALIZE_H_
