// Saving/restoring a workspace to/from disk (paper Sect. 5: "For long
// transactions, XNF allows the cache to be stored on disk and retrieved
// later, thereby protecting the cache from client machine's failure").
//
// The format is a line-oriented text format with length-prefixed strings,
// versioned for forward compatibility. Version 2 ("XNFCACHE 2") wraps the
// body in CRC32-carrying sections with a whole-file footer (see
// common/file_format.h), so corrupted or truncated caches are rejected
// with kIoError; version-1 files still load. Pending (not written back)
// changes are not serializable: save after WriteBack. File-level helpers
// route through an `Env` and replace the destination atomically, so an
// interrupted save leaves the previous cache intact.

#ifndef XNFDB_CACHE_SERIALIZE_H_
#define XNFDB_CACHE_SERIALIZE_H_

#include <iostream>
#include <memory>
#include <string>

#include "cache/workspace.h"
#include "common/env.h"
#include "common/status.h"

namespace xnfdb {

// The version new cache files are written with; 1 remains writable for
// compatibility testing.
inline constexpr int kCacheFormatVersion = 2;

Status SaveWorkspace(const Workspace& workspace, std::ostream& out,
                     int format_version = kCacheFormatVersion);
Result<std::unique_ptr<Workspace>> LoadWorkspace(
    std::istream& in, const WorkspaceOptions& options = {});

// Atomic replace of `path` via `env` (Env::Default() when null).
Status SaveWorkspaceToFile(const Workspace& workspace,
                           const std::string& path, Env* env = nullptr);
Result<std::unique_ptr<Workspace>> LoadWorkspaceFromFile(
    const std::string& path, const WorkspaceOptions& options = {},
    Env* env = nullptr);

}  // namespace xnfdb

#endif  // XNFDB_CACHE_SERIALIZE_H_
