// The seamless C++ interface (paper Sect. 5.2 / 6): XNF "allows the cache
// to be stored in C++ structures, allowing seamless interface between
// applications and the data in the cache ... a technique, similar to C++
// templates, that provides generic XNF cursor services independent of the
// data type of the nodes or relationships."
//
// `ObjectSet<T>` is the container class holding all instances of a
// component bound to a user-defined C++ type; `XCursor<T>` is the generic
// typed cursor over it. Relationship members (e.g. a `Dept*` inside `Emp`)
// are wired with `LinkMembers`.
//
// Example:
//   struct Dept { int64_t dno; std::string name; std::vector<Emp*> emps; };
//   struct Emp  { int64_t eno; std::string name; Dept* dept = nullptr; };
//
//   ObjectSet<Dept> depts;
//   depts.Load(ws, "XDEPT", [](const CachedRow& r, Dept* d) {
//     d->dno = r.values[0].AsInt(); d->name = r.values[1].AsString();
//   });
//   ObjectSet<Emp> emps; emps.Load(ws, "XEMP", ...);
//   LinkMembers(ws, "EMPLOYMENT", &depts, &emps,
//               [](Dept* d, Emp* e) { d->emps.push_back(e); e->dept = d; });

#ifndef XNFDB_CACHE_SEAMLESS_H_
#define XNFDB_CACHE_SEAMLESS_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cursor.h"
#include "cache/workspace.h"
#include "common/status.h"

namespace xnfdb {

// Container of all instances of one component mapped onto `T`.
template <typename T>
class ObjectSet {
 public:
  // Fills `T` from a cached row.
  using Binder = std::function<void(const CachedRow&, T*)>;

  // Materializes one `T` per live row of `component_name`.
  Status Load(Workspace* workspace, const std::string& component_name,
              const Binder& binder) {
    Result<ComponentTable*> comp = workspace->component(component_name);
    if (!comp.ok()) return comp.status();
    component_ = comp.value();
    objects_.clear();
    by_row_.clear();
    IndependentCursor cursor(component_);
    while (cursor.Next()) {
      auto obj = std::make_unique<T>();
      binder(*cursor.row(), obj.get());
      by_row_[cursor.row()] = obj.get();
      objects_.push_back(std::move(obj));
    }
    return Status::Ok();
  }

  size_t size() const { return objects_.size(); }
  T* object(size_t i) { return objects_[i].get(); }
  const T* object(size_t i) const { return objects_[i].get(); }

  // The object materialized for `row`, or nullptr.
  T* ForRow(const CachedRow* row) const {
    auto it = by_row_.find(row);
    return it == by_row_.end() ? nullptr : it->second;
  }

  ComponentTable* component() const { return component_; }

  // Iteration support (range-for over T&).
  class iterator {
   public:
    iterator(typename std::vector<std::unique_ptr<T>>::iterator it)
        : it_(it) {}
    T& operator*() { return **it_; }
    iterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator!=(const iterator& other) const { return it_ != other.it_; }

   private:
    typename std::vector<std::unique_ptr<T>>::iterator it_;
  };
  iterator begin() { return iterator(objects_.begin()); }
  iterator end() { return iterator(objects_.end()); }

 private:
  ComponentTable* component_ = nullptr;
  std::vector<std::unique_ptr<T>> objects_;
  std::unordered_map<const CachedRow*, T*> by_row_;
};

// Wires relationship pointers between two object sets: for every connection
// of `relationship_name`, `link(parent_obj, child_obj)` is invoked once.
template <typename Parent, typename Child>
Status LinkMembers(Workspace* workspace, const std::string& relationship_name,
                   ObjectSet<Parent>* parents, ObjectSet<Child>* children,
                   const std::function<void(Parent*, Child*)>& link) {
  Result<Relationship*> rel = workspace->relationship(relationship_name);
  if (!rel.ok()) return rel.status();
  for (size_t i = 0; i < rel.value()->size(); ++i) {
    const CachedConnection* conn = rel.value()->connection(i);
    if (conn->deleted) continue;
    Parent* parent = parents->ForRow(conn->partners[0]);
    for (size_t pi = 1; pi < conn->partners.size(); ++pi) {
      Child* child = children->ForRow(conn->partners[pi]);
      if (parent != nullptr && child != nullptr) link(parent, child);
    }
  }
  return Status::Ok();
}

// Generic typed cursor over an ObjectSet (the XCursor of Sect. 5.2).
template <typename T>
class XCursor {
 public:
  explicit XCursor(ObjectSet<T>* set) : set_(set) {}

  bool Next() {
    if (pos_ >= set_->size()) {
      current_ = nullptr;
      return false;
    }
    current_ = set_->object(pos_++);
    return true;
  }
  T* object() const { return current_; }
  void Reset() {
    pos_ = 0;
    current_ = nullptr;
  }

 private:
  ObjectSet<T>* set_;
  size_t pos_ = 0;
  T* current_ = nullptr;
};

}  // namespace xnfdb

#endif  // XNFDB_CACHE_SEAMLESS_H_
