#include "optimizer/planner.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <set>

namespace xnfdb {

namespace {

using qgm::Box;
using qgm::BoxKind;
using qgm::Expr;
using qgm::QuantKind;
using qgm::Quantifier;

// True if `e` references only quantifiers from `allowed`.
bool BoundBy(const Expr& e, const std::set<int>& allowed) {
  std::vector<int> used;
  e.CollectQuants(&used);
  for (int q : used) {
    if (allowed.count(q) == 0) return false;
  }
  return used.empty() || true;
}

bool ReferencesAny(const Expr& e, const std::set<int>& quants) {
  std::vector<int> used;
  e.CollectQuants(&used);
  for (int q : used) {
    if (quants.count(q) != 0) return true;
  }
  return false;
}

bool ContainsAgg(const Expr& e) {
  if (e.kind == Expr::Kind::kAgg) return true;
  if (e.lhs && ContainsAgg(*e.lhs)) return true;
  if (e.rhs && ContainsAgg(*e.rhs)) return true;
  return false;
}

// A single-empty-tuple source for quantifier-free boxes (SELECT 1).
class OneRowOp : public Operator {
 protected:
  Status OpenImpl() override {
    done_ = false;
    return Status::Ok();
  }
  Result<bool> NextImpl(Tuple* row) override {
    if (done_) return false;
    row->clear();
    done_ = true;
    return true;
  }

 public:
  OneRowOp() { SetEstimatedRows(1.0); }
  void CloseImpl() override {}
  void ExplainImpl(int depth, std::string* out) const override {
    SelfLine(depth, "OneRow", out);
  }

 private:
  bool done_ = false;
};

}  // namespace

Result<OperatorPtr> Planner::BoxIterator(int box_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const Box* box = graph_->box(box_id);
  bool shared = options_.spool_shared &&
                graph_->ConsumerRefCount(box_id) > 1 &&
                box->kind != BoxKind::kBaseTable;
  if (shared) {
    XNFDB_ASSIGN_OR_RETURN(auto rows, MaterializeBox(box_id));
    OperatorPtr op = std::make_unique<MaterializedOp>(rows, stats_);
    // The spool is already materialized: the "estimate" is exact.
    op->SetEstimatedRows(static_cast<double>(rows->size()));
    if (options_.analyze) op->EnableAnalyze();
    if (options_.context != nullptr) op->AttachContext(options_.context);
    return op;
  }
  XNFDB_ASSIGN_OR_RETURN(OperatorPtr op, CompileBox(box_id));
  if (options_.analyze) op->EnableAnalyze();
  if (options_.context != nullptr) op->AttachContext(options_.context);
  return op;
}

Result<std::shared_ptr<const std::vector<Tuple>>> Planner::MaterializeBox(
    int box_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = spools_.find(box_id);
  if (it != spools_.end()) return it->second;
  XNFDB_ASSIGN_OR_RETURN(OperatorPtr op, CompileBox(box_id));
  // Spool builds run plan-time: attach governance so a cancel/deadline/
  // budget cuts the drain short, and charge the spooled rows.
  if (options_.context != nullptr) op->AttachContext(options_.context);
  XNFDB_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      DrainOperator(op.get(), options_.batch_size, options_.context));
  if (stats_ != nullptr) ++stats_->spool_builds;
  auto shared = std::make_shared<const std::vector<Tuple>>(std::move(rows));
  spools_[box_id] = shared;
  return shared;
}

Table* Planner::OverrideFor(const std::string& name) const {
  if (options_.table_overrides == nullptr) return nullptr;
  auto it = options_.table_overrides->find(name);
  return it == options_.table_overrides->end() ? nullptr : it->second;
}

Result<OperatorPtr> Planner::CompileBox(int box_id) {
  const Box* box = graph_->box(box_id);
  if (graph_->IsDead(box_id)) {
    return Status::Internal("compiling dead box " + std::to_string(box_id));
  }
  if (stats_ != nullptr) ++stats_->operators_created;
  OperatorPtr op;
  switch (box->kind) {
    case BoxKind::kBaseTable: {
      if (Table* delta = OverrideFor(box->table_name)) {
        op = std::make_unique<ScanOp>(delta, stats_);
        break;
      }
      if (const VirtualTableProvider* v =
              catalog_->GetVirtualTable(box->table_name)) {
        op = std::make_unique<VirtualScanOp>(v, stats_);
        break;
      }
      XNFDB_ASSIGN_OR_RETURN(Table * table,
                             catalog_->GetTable(box->table_name));
      op = std::make_unique<ScanOp>(table, stats_);
      break;
    }
    case BoxKind::kSelect: {
      XNFDB_ASSIGN_OR_RETURN(op, CompileSelect(*box));
      break;
    }
    case BoxKind::kUnion: {
      XNFDB_ASSIGN_OR_RETURN(op, CompileUnion(*box));
      break;
    }
    case BoxKind::kXnf:
    case BoxKind::kTop:
      return Status::Internal(std::string("cannot compile ") +
                              qgm::BoxKindName(box->kind) + " box directly");
  }
  if (op == nullptr) return Status::Internal("unknown box kind");
  if (op->estimated_rows() < 0) op->SetEstimatedRows(EstimateCard(box_id));
  return op;
}

Result<OperatorPtr> Planner::CompileUnion(const Box& box) {
  std::vector<OperatorPtr> children;
  double est = 0;
  for (int in : box.union_inputs) {
    XNFDB_ASSIGN_OR_RETURN(OperatorPtr c, BoxIterator(in));
    est += EstimateCard(in);
    children.push_back(std::move(c));
  }
  OperatorPtr u = std::make_unique<UnionOp>(std::move(children));
  u->SetEstimatedRows(std::max(est, 1.0));
  if (box.distinct) {
    u = std::make_unique<DistinctOp>(std::move(u));
    u->SetEstimatedRows(std::max(est, 1.0));
  }
  return u;
}

Result<OperatorPtr> Planner::QuantSource(const Quantifier& q,
                                         std::vector<const Expr*> pushed) {
  const Box* source = graph_->box(q.box_id);
  // The stream's estimated cardinality with every pushed predicate applied
  // — computed up front, before access-path selection consumes predicates.
  const double total = QuantCard(q, pushed);
  OperatorPtr op;
  // Access-path selection: `col = literal` on an indexed base-table column.
  // Virtual tables (sys$ views) have no indexes: HasTable excludes them.
  // Overridden (delta) tables have no indexes either: OverrideFor excludes.
  if (options_.use_indexes && source->kind == BoxKind::kBaseTable &&
      OverrideFor(source->table_name) == nullptr &&
      catalog_->HasTable(source->table_name)) {
    XNFDB_ASSIGN_OR_RETURN(Table * table,
                           catalog_->GetTable(source->table_name));
    for (size_t i = 0; i < pushed.size(); ++i) {
      const Expr* p = pushed[i];
      if (p->kind != Expr::Kind::kBinary || p->op != "=") continue;
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      if (p->lhs->kind == Expr::Kind::kColRef &&
          p->rhs->kind == Expr::Kind::kLiteral) {
        col = p->lhs.get();
        lit = p->rhs.get();
      } else if (p->rhs->kind == Expr::Kind::kColRef &&
                 p->lhs->kind == Expr::Kind::kLiteral) {
        col = p->rhs.get();
        lit = p->lhs.get();
      } else {
        continue;
      }
      if (table->GetIndex(col->column) == nullptr) continue;
      op = std::make_unique<IndexScanOp>(table, col->column, lit->literal,
                                         stats_);
      op->SetEstimatedRows(
          std::max(EstimateCard(q.box_id) * PredSelectivity(*p), 1.0));
      pushed.erase(pushed.begin() + i);
      break;
    }
  }
  // Range access path: comparison predicates against literals on an
  // ordered-indexed column (col < lit, col >= lit, ..., col = lit).
  if (op == nullptr && options_.use_indexes &&
      source->kind == BoxKind::kBaseTable &&
      OverrideFor(source->table_name) == nullptr &&
      catalog_->HasTable(source->table_name)) {
    XNFDB_ASSIGN_OR_RETURN(Table * table,
                           catalog_->GetTable(source->table_name));
    // Find the first ordered-indexed column with at least one usable bound.
    int best_col = -1;
    std::optional<Value> lo, hi;
    bool lo_inc = true, hi_inc = true;
    std::vector<size_t> used;
    for (size_t i = 0; i < pushed.size(); ++i) {
      const Expr* p = pushed[i];
      if (p->kind != Expr::Kind::kBinary) continue;
      std::string op_name = p->op;
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      if (p->lhs->kind == Expr::Kind::kColRef &&
          p->rhs->kind == Expr::Kind::kLiteral) {
        col = p->lhs.get();
        lit = p->rhs.get();
      } else if (p->rhs->kind == Expr::Kind::kColRef &&
                 p->lhs->kind == Expr::Kind::kLiteral) {
        col = p->rhs.get();
        lit = p->lhs.get();
        // Flip the comparison: lit OP col == col flipped(OP) lit.
        if (op_name == "<") op_name = ">";
        else if (op_name == "<=") op_name = ">=";
        else if (op_name == ">") op_name = "<";
        else if (op_name == ">=") op_name = "<=";
      } else {
        continue;
      }
      if (op_name != "=" && op_name != "<" && op_name != "<=" &&
          op_name != ">" && op_name != ">=") {
        continue;
      }
      if (lit->literal.is_null()) continue;
      if (best_col >= 0 && col->column != best_col) continue;
      if (table->GetOrderedIndex(col->column) == nullptr) continue;
      best_col = col->column;
      const Value& v = lit->literal;
      auto tighten_lo = [&](const Value& b, bool inc) {
        if (!lo.has_value() || *lo < b || (*lo == b && !inc)) {
          lo = b;
          lo_inc = inc;
        }
      };
      auto tighten_hi = [&](const Value& b, bool inc) {
        if (!hi.has_value() || b < *hi || (*hi == b && !inc)) {
          hi = b;
          hi_inc = inc;
        }
      };
      if (op_name == "=") {
        tighten_lo(v, true);
        tighten_hi(v, true);
      } else if (op_name == ">") {
        tighten_lo(v, false);
      } else if (op_name == ">=") {
        tighten_lo(v, true);
      } else if (op_name == "<") {
        tighten_hi(v, false);
      } else {
        tighten_hi(v, true);
      }
      used.push_back(i);
    }
    if (best_col >= 0) {
      double sel = 1.0;
      for (size_t i : used) sel *= PredSelectivity(*pushed[i]);
      op = std::make_unique<RangeScanOp>(table, best_col, std::move(lo),
                                         lo_inc, std::move(hi), hi_inc,
                                         stats_);
      op->SetEstimatedRows(std::max(EstimateCard(q.box_id) * sel, 1.0));
      for (auto it = used.rbegin(); it != used.rend(); ++it) {
        pushed.erase(pushed.begin() + *it);
      }
    }
  }
  if (op == nullptr) {
    XNFDB_ASSIGN_OR_RETURN(op, BoxIterator(q.box_id));
  }
  if (!pushed.empty()) {
    Layout layout;
    layout.Add(q.id, 0, source->HeadArity());
    op = std::make_unique<FilterOp>(std::move(op), std::move(pushed), layout,
                                    stats_);
    op->SetEstimatedRows(total);
  }
  // Sources estimated at creation (scans, spools) keep their own numbers.
  if (op->estimated_rows() < 0) op->SetEstimatedRows(total);
  return op;
}

const Table* Planner::StatsTableFor(int quant_id) const {
  const Box* ranged = graph_->RangedBox(quant_id);
  if (ranged == nullptr || ranged->kind != BoxKind::kBaseTable) return nullptr;
  // Delta-overridden scans cost by the override's stats: the real table is
  // not read by the plan, and touching it here would recompute full column
  // statistics (O(rows)) on every delta-maintenance re-plan.
  if (Table* delta = OverrideFor(ranged->table_name)) return delta;
  Result<Table*> table = catalog_->GetTable(ranged->table_name);
  return table.ok() ? table.value() : nullptr;
}

double Planner::PredSelectivity(const Expr& pred) {
  if (pred.kind == Expr::Kind::kBinary) {
    if (pred.op == "=") {
      // col = literal against a base column: 1/distinct.
      const Expr* col = nullptr;
      if (pred.lhs->kind == Expr::Kind::kColRef &&
          pred.rhs->kind == Expr::Kind::kLiteral) {
        col = pred.lhs.get();
      } else if (pred.rhs->kind == Expr::Kind::kColRef &&
                 pred.lhs->kind == Expr::Kind::kLiteral) {
        col = pred.rhs.get();
      }
      if (col != nullptr) {
        if (const Table* t = StatsTableFor(col->quant_id)) {
          size_t d = t->GetColumnStats(col->column).distinct;
          if (d > 0) return 1.0 / static_cast<double>(d);
        }
        return 0.05;
      }
      // join predicate col = col
      if (pred.lhs->kind == Expr::Kind::kColRef &&
          pred.rhs->kind == Expr::Kind::kColRef) {
        double d = 10.0;
        for (const Expr* side : {pred.lhs.get(), pred.rhs.get()}) {
          if (const Table* t = StatsTableFor(side->quant_id)) {
            size_t dd = t->GetColumnStats(side->column).distinct;
            d = std::max(d, static_cast<double>(dd));
          }
        }
        return 1.0 / d;
      }
      return 0.1;
    }
    if (pred.op == "<" || pred.op == "<=" || pred.op == ">" ||
        pred.op == ">=") {
      return 0.3;
    }
    if (pred.op == "<>") return 0.9;
    if (pred.op == "AND") {
      return PredSelectivity(*pred.lhs) * PredSelectivity(*pred.rhs);
    }
    if (pred.op == "OR") {
      double a = PredSelectivity(*pred.lhs), b = PredSelectivity(*pred.rhs);
      return std::min(1.0, a + b);
    }
  }
  if (pred.kind == Expr::Kind::kLike) return 0.25;
  return 0.5;
}

double Planner::EstimateCard(int box_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = card_cache_.find(box_id);
  if (it != card_cache_.end()) return it->second;
  card_cache_[box_id] = 1000.0;  // cycle guard
  const Box* box = graph_->box(box_id);
  double card = 1.0;
  switch (box->kind) {
    case BoxKind::kBaseTable: {
      if (Table* delta = OverrideFor(box->table_name)) {
        card = static_cast<double>(delta->row_count());
        break;
      }
      Result<Table*> table = catalog_->GetTable(box->table_name);
      if (table.ok()) {
        card = static_cast<double>(table.value()->row_count());
      } else if (const VirtualTableProvider* v =
                     catalog_->GetVirtualTable(box->table_name)) {
        card = v->EstimatedRows();
      } else {
        card = 0;
      }
      break;
    }
    case BoxKind::kSelect: {
      for (const Quantifier& q : box->quants) {
        if (q.kind == QuantKind::kForeach) card *= EstimateCard(q.box_id);
      }
      for (const qgm::ExprPtr& p : box->preds) {
        card *= PredSelectivity(*p);
      }
      for (const qgm::ExistsGroup& g : box->exists_groups) {
        (void)g;
        card *= 0.5;
      }
      if (!box->group_by.empty()) card *= 0.1;
      break;
    }
    case BoxKind::kUnion: {
      card = 0;
      for (int in : box->union_inputs) card += EstimateCard(in);
      break;
    }
    default:
      card = 0;
  }
  card = std::max(card, 1.0);
  card_cache_[box_id] = card;
  return card;
}

double Planner::QuantCard(const Quantifier& q,
                          const std::vector<const Expr*>& pushed) {
  double card = EstimateCard(q.box_id);
  for (const Expr* p : pushed) card *= PredSelectivity(*p);
  return std::max(card, 1.0);
}

Result<OperatorPtr> Planner::BuildJoinTree(
    const std::vector<const Quantifier*>& quants,
    const std::vector<const Expr*>& preds, Layout* layout) {
  if (quants.empty()) {
    return OperatorPtr(std::make_unique<OneRowOp>());
  }

  // Partition predicates: single-quant predicates are pushed to sources,
  // others applied once all their quantifiers joined.
  std::map<int, std::vector<const Expr*>> pushed;
  std::vector<const Expr*> join_preds;
  for (const Expr* p : preds) {
    std::vector<int> used;
    p->CollectQuants(&used);
    if (used.size() == 1) {
      pushed[used[0]].push_back(p);
    } else {
      join_preds.push_back(p);
    }
  }

  // Greedy join order: cheapest source first, then prefer quantifiers that
  // are equi-connected to the joined set, cheapest among them.
  std::vector<const Quantifier*> remaining = quants;
  auto cheapest = [&](bool connected_only,
                      const std::set<int>& joined) -> int {
    int best = -1;
    double best_card = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const Quantifier* q = remaining[i];
      if (connected_only) {
        bool connected = false;
        for (const Expr* p : join_preds) {
          std::vector<int> used;
          p->CollectQuants(&used);
          bool uses_q = false, uses_joined = false, uses_other = false;
          for (int u : used) {
            if (u == q->id) {
              uses_q = true;
            } else if (joined.count(u)) {
              uses_joined = true;
            } else {
              uses_other = true;
            }
          }
          if (uses_q && uses_joined && !uses_other) connected = true;
        }
        if (!connected) continue;
      }
      double card = QuantCard(*q, pushed[q->id]);
      if (best < 0 || card < best_card) {
        best = static_cast<int>(i);
        best_card = card;
      }
    }
    return best;
  };

  std::set<int> joined;
  int first = cheapest(false, joined);
  const Quantifier* q0 = remaining[first];
  remaining.erase(remaining.begin() + first);
  XNFDB_ASSIGN_OR_RETURN(OperatorPtr current, QuantSource(*q0, pushed[q0->id]));
  Layout current_layout;
  size_t width = graph_->box(q0->box_id)->HeadArity();
  current_layout.Add(q0->id, 0, width);
  joined.insert(q0->id);
  std::vector<bool> pred_used(join_preds.size(), false);
  // Running cardinality estimate of the joined prefix, stamped on each
  // join operator as it is built.
  double card = QuantCard(*q0, pushed[q0->id]);

  while (!remaining.empty()) {
    int pick = cheapest(true, joined);
    if (pick < 0) pick = cheapest(false, joined);
    const Quantifier* q = remaining[pick];
    remaining.erase(remaining.begin() + pick);
    XNFDB_ASSIGN_OR_RETURN(OperatorPtr inner, QuantSource(*q, pushed[q->id]));
    size_t inner_width = graph_->box(q->box_id)->HeadArity();
    Layout inner_layout;
    inner_layout.Add(q->id, 0, inner_width);
    Layout combined = current_layout;
    combined.Add(q->id, width, inner_width);

    // Predicates becoming fully bound with q joined in.
    std::set<int> now_joined = joined;
    now_joined.insert(q->id);
    std::vector<const Expr*> ready;
    for (size_t i = 0; i < join_preds.size(); ++i) {
      if (pred_used[i]) continue;
      if (BoundBy(*join_preds[i], now_joined) &&
          ReferencesAny(*join_preds[i], {q->id})) {
        ready.push_back(join_preds[i]);
        pred_used[i] = true;
      }
    }
    // Extract hash keys: `left = right` with left bound by joined set and
    // right by {q} (or vice versa).
    std::vector<const Expr*> left_keys, right_keys, residual;
    std::set<int> only_q{q->id};
    for (const Expr* p : ready) {
      bool is_equi = false;
      if (options_.use_hash_join && p->kind == Expr::Kind::kBinary &&
          p->op == "=") {
        const Expr* a = p->lhs.get();
        const Expr* b = p->rhs.get();
        if (BoundBy(*a, joined) && BoundBy(*b, only_q) &&
            ReferencesAny(*a, joined) && ReferencesAny(*b, only_q)) {
          left_keys.push_back(a);
          right_keys.push_back(b);
          is_equi = true;
        } else if (BoundBy(*b, joined) && BoundBy(*a, only_q) &&
                   ReferencesAny(*b, joined) && ReferencesAny(*a, only_q)) {
          left_keys.push_back(b);
          right_keys.push_back(a);
          is_equi = true;
        }
      }
      if (!is_equi) residual.push_back(p);
    }
    card *= QuantCard(*q, pushed[q->id]);
    for (const Expr* p : ready) card *= PredSelectivity(*p);
    card = std::max(card, 1.0);
    if (!left_keys.empty()) {
      current = std::make_unique<HashJoinOp>(
          std::move(current), std::move(inner), std::move(left_keys),
          std::move(right_keys), std::move(residual), current_layout,
          inner_layout, combined, stats_);
    } else {
      current = std::make_unique<NLJoinOp>(std::move(current),
                                           std::move(inner), std::move(residual),
                                           combined, stats_);
    }
    current->SetEstimatedRows(card);
    current_layout = combined;
    width += inner_width;
    joined.insert(q->id);
  }

  // Any predicate not yet applied (e.g. referencing a single repeated
  // quantifier set oddly) is applied as a final filter.
  std::vector<const Expr*> leftover;
  for (size_t i = 0; i < join_preds.size(); ++i) {
    if (!pred_used[i]) leftover.push_back(join_preds[i]);
  }
  if (!leftover.empty()) {
    for (const Expr* p : leftover) card *= PredSelectivity(*p);
    current = std::make_unique<FilterOp>(
        std::move(current), std::move(leftover), current_layout, stats_);
    current->SetEstimatedRows(std::max(card, 1.0));
  }
  *layout = current_layout;
  return current;
}

Result<OperatorPtr> Planner::CompileSelect(const Box& box) {
  // F-quantifiers and the conjunctive predicates drive the join tree.
  std::vector<const Quantifier*> fquants = box.ForeachQuants();
  std::vector<const Expr*> preds;
  for (const qgm::ExprPtr& p : box.preds) preds.push_back(p.get());

  Layout layout;
  XNFDB_ASSIGN_OR_RETURN(OperatorPtr current,
                         BuildJoinTree(fquants, preds, &layout));

  // Existential groups (disjunctive reachability / unconverted subqueries).
  if (!box.exists_groups.empty()) {
    std::set<int> outer_ids;
    for (const Quantifier* q : fquants) outer_ids.insert(q->id);
    std::vector<GroupCheck> checks;
    for (const qgm::ExistsGroup& group : box.exists_groups) {
      GroupCheck check;
      check.negated = group.negated;
      std::set<int> group_ids(group.quant_ids.begin(), group.quant_ids.end());
      // Split group predicates: internal (group-only) drive the group-side
      // join; the rest correlate with the outer row.
      std::vector<const Expr*> internal;
      std::vector<const Expr*> correlated;
      for (const qgm::ExprPtr& p : group.preds) {
        if (BoundBy(*p, group_ids)) {
          internal.push_back(p.get());
        } else {
          correlated.push_back(p.get());
        }
      }
      std::vector<const Quantifier*> gquants;
      for (int qid : group.quant_ids) {
        gquants.push_back(box.FindQuant(qid));
      }
      Layout group_layout;
      XNFDB_ASSIGN_OR_RETURN(OperatorPtr gop,
                             BuildJoinTree(gquants, internal, &group_layout));
      if (options_.context != nullptr) gop->AttachContext(options_.context);
      XNFDB_ASSIGN_OR_RETURN(
          std::vector<Tuple> rows,
          DrainOperator(gop.get(), options_.batch_size, options_.context));
      check.rows =
          std::make_shared<const std::vector<Tuple>>(std::move(rows));
      check.group_layout = group_layout;
      check.combined_layout = layout;
      check.combined_layout.Append(group_layout, layout.TotalWidth());
      // Extract equi-correlation pairs.
      for (const Expr* p : correlated) {
        bool is_equi = false;
        if (p->kind == Expr::Kind::kBinary && p->op == "=") {
          const Expr* a = p->lhs.get();
          const Expr* b = p->rhs.get();
          if (BoundBy(*a, outer_ids) && BoundBy(*b, group_ids)) {
            check.equi_outer.push_back(a);
            check.equi_inner.push_back(b);
            is_equi = true;
          } else if (BoundBy(*b, outer_ids) && BoundBy(*a, group_ids)) {
            check.equi_outer.push_back(b);
            check.equi_inner.push_back(a);
            is_equi = true;
          }
        }
        if (!is_equi) check.residual.push_back(p);
      }
      checks.push_back(std::move(check));
    }
    const double child_est = current->estimated_rows();
    current = std::make_unique<ExistsFilterOp>(
        std::move(current), std::move(checks), layout,
        box.groups_disjunctive, options_.naive_exists, stats_);
    if (child_est >= 0) {
      double est = child_est;
      for (size_t i = 0; i < box.exists_groups.size(); ++i) est *= 0.5;
      current->SetEstimatedRows(std::max(est, 1.0));
    }
  }

  // Aggregation or plain projection to the head.
  bool has_agg = !box.group_by.empty();
  for (const qgm::HeadColumn& h : box.head) {
    if (h.expr && ContainsAgg(*h.expr)) has_agg = true;
  }
  if (has_agg) {
    std::vector<const Expr*> group_by;
    for (const qgm::ExprPtr& g : box.group_by) group_by.push_back(g.get());
    std::vector<AggSpec> specs;
    for (const qgm::HeadColumn& h : box.head) {
      AggSpec spec;
      if (h.expr->kind == Expr::Kind::kAgg) {
        spec.is_agg = true;
        spec.func = h.expr->op;
        spec.arg = h.expr->lhs.get();
      } else {
        spec.group_expr = h.expr.get();
      }
      specs.push_back(spec);
    }
    const double child_est = current->estimated_rows();
    current = std::make_unique<AggOp>(std::move(current), std::move(group_by),
                                      std::move(specs), layout);
    // Scalar aggregation collapses to one row; grouped keeps ~10% of input.
    current->SetEstimatedRows(
        box.group_by.empty()
            ? 1.0
            : std::max(child_est >= 0 ? child_est * 0.1 : 1.0, 1.0));
  } else {
    const double child_est = current->estimated_rows();
    std::vector<const Expr*> exprs;
    for (const qgm::HeadColumn& h : box.head) exprs.push_back(h.expr.get());
    current = std::make_unique<ProjectOp>(std::move(current),
                                          std::move(exprs), layout, stats_);
    if (child_est >= 0) current->SetEstimatedRows(child_est);
  }

  if (box.distinct) {
    const double child_est = current->estimated_rows();
    current = std::make_unique<DistinctOp>(std::move(current));
    if (child_est >= 0) current->SetEstimatedRows(child_est);
  }
  if (!box.order_by.empty()) {
    const double child_est = current->estimated_rows();
    current = std::make_unique<SortOp>(std::move(current), box.order_by);
    if (child_est >= 0) current->SetEstimatedRows(child_est);
  }
  if (box.limit >= 0 || box.offset > 0) {
    const double child_est = current->estimated_rows();
    current =
        std::make_unique<LimitOp>(std::move(current), box.limit, box.offset);
    if (child_est >= 0) {
      current->SetEstimatedRows(
          box.limit >= 0
              ? std::max(std::min(static_cast<double>(box.limit), child_est),
                         1.0)
              : child_est);
    }
  }
  return current;
}

}  // namespace xnfdb
