// Plan optimization and refinement (paper Sect. 3.1, 4.3): compiles QGM
// boxes into physical operator trees.
//
// The planner performs the classic relational choices the paper leans on:
//  * access-path selection — hash-index lookups for `col = literal`
//    predicates on base tables, scans otherwise;
//  * join-method selection — hash join for equi-predicates, nested loops
//    otherwise;
//  * join ordering — greedy smallest-cardinality-first with connectivity
//    preference, driven by table statistics;
//  * common-subexpression sharing — boxes with more than one consumer are
//    spooled (materialized once, read many times), which realizes the
//    multi-query optimization the XNF rewrite sets up (Sect. 4.2, 5.1).

#ifndef XNFDB_OPTIMIZER_PLANNER_H_
#define XNFDB_OPTIMIZER_PLANNER_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "exec/operators.h"
#include "qgm/qgm.h"
#include "storage/catalog.h"

namespace xnfdb {

struct PlanOptions {
  bool use_indexes = true;
  bool use_hash_join = true;  // false => nested-loop joins only
  bool naive_exists = false;  // per-outer-row subquery scans (Sect. 3.2 naive)
  bool spool_shared = true;   // false => recompute shared boxes per consumer
  // EXPLAIN ANALYZE: operators returned by BoxIterator measure inclusive
  // wall time per Next call (row/loop counting is always on).
  bool analyze = false;
  // Pull granularity for plan-time materialization (spools, existential
  // group builds). <= 1 drains row-at-a-time; the executor passes its
  // resolved ExecOptions::batch_size through here.
  int batch_size = 1;
  // Resource-governance context (exec/query_context.h), not owned; must
  // outlive the planner and its operators. When set, BoxIterator attaches
  // it to every returned tree and plan-time materializations (spools,
  // existential group builds) charge their rows against its memory budget.
  QueryContext* context = nullptr;
  // Base-table substitution (matview delta propagation): a box referencing
  // table `name` scans the mapped transient table instead of the catalog
  // one. Overridden tables never take index access paths — delta tables
  // carry no indexes. Not owned; must outlive the planner.
  const std::map<std::string, Table*>* table_overrides = nullptr;
};

// Compiles boxes of one QueryGraph into operators. The planner owns the
// spool buffers; it must outlive the operators it creates. The graph and
// catalog must outlive the planner.
//
// Thread safety: plan compilation (BoxIterator / MaterializeBox /
// EstimateCard) is serialized internally, so several workers may compile
// and then *execute* their operator trees concurrently (spool buffers are
// immutable once built; base tables are read-only during query execution).
class Planner {
 public:
  Planner(const Catalog* catalog, const qgm::QueryGraph* graph,
          PlanOptions options, ExecStats* stats)
      : catalog_(catalog), graph_(graph), options_(options), stats_(stats) {}

  // An iterator producing the head rows of `box_id`. Shared boxes read from
  // a spool that is populated on first use.
  Result<OperatorPtr> BoxIterator(int box_id);

  // Materialized head rows of `box_id` (cached).
  Result<std::shared_ptr<const std::vector<Tuple>>> MaterializeBox(int box_id);

  // Estimated output cardinality of `box_id`.
  double EstimateCard(int box_id);

 private:
  Result<OperatorPtr> CompileBox(int box_id);
  Result<OperatorPtr> CompileSelect(const qgm::Box& box);
  Result<OperatorPtr> CompileUnion(const qgm::Box& box);

  // Builds the join tree over `quants` applying `preds` as early as
  // possible. Returns the root operator and fills `layout`.
  Result<OperatorPtr> BuildJoinTree(
      const std::vector<const qgm::Quantifier*>& quants,
      const std::vector<const qgm::Expr*>& preds, Layout* layout);

  // Source for one quantifier with its single-quantifier predicates pushed
  // down (index lookup when possible).
  Result<OperatorPtr> QuantSource(const qgm::Quantifier& q,
                                  std::vector<const qgm::Expr*> pushed);

  double QuantCard(const qgm::Quantifier& q,
                   const std::vector<const qgm::Expr*>& pushed);
  double PredSelectivity(const qgm::Expr& pred);

  // The override table for `name`, or nullptr (options_.table_overrides).
  Table* OverrideFor(const std::string& name) const;
  // The table whose statistics cost the stream `quant_id` ranges over: the
  // delta override when one is installed, else the catalog base table;
  // nullptr when the quantifier does not range over a base table.
  const Table* StatsTableFor(int quant_id) const;

  const Catalog* catalog_;
  const qgm::QueryGraph* graph_;
  PlanOptions options_;
  ExecStats* stats_;

  // Serializes compilation; recursive because materializing one box may
  // require materializing its inputs.
  std::recursive_mutex mu_;
  std::map<int, std::shared_ptr<const std::vector<Tuple>>> spools_;
  std::map<int, double> card_cache_;
};

}  // namespace xnfdb

#endif  // XNFDB_OPTIMIZER_PLANNER_H_
