#include "common/str_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <set>

#include "common/log.h"

namespace xnfdb {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

namespace {

bool LikeMatchAt(const std::string& text, size_t ti, const std::string& pat,
                 size_t pi) {
  while (pi < pat.size()) {
    char p = pat[pi];
    if (p == '%') {
      // Collapse runs of '%'.
      while (pi < pat.size() && pat[pi] == '%') ++pi;
      if (pi == pat.size()) return true;
      for (size_t k = ti; k <= text.size(); ++k) {
        if (LikeMatchAt(text, k, pat, pi)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (p != '_' && p != text[ti]) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  return LikeMatchAt(text, 0, pattern, 0);
}

namespace {

// Warns about one malformed/clamped env var only once per process.
void WarnEnvOnce(const char* name, const std::string& raw,
                 const std::string& what, int64_t used) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!warned->insert(name).second) return;
  }
  Logger::Default().Log(LogLevel::kWarn, "env", what,
                        {LogField::S("var", name), LogField::S("value", raw),
                         LogField::N("using", used)});
}

}  // namespace

int64_t ParseEnvInt(const char* name, int64_t min_value, int64_t max_value,
                    int64_t default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(raw, &end, 10);
  // Reject trailing garbage (allow trailing whitespace) and overflow.
  while (end != nullptr && *end != '\0' &&
         std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  if (end == raw || (end != nullptr && *end != '\0') || errno == ERANGE) {
    WarnEnvOnce(name, raw, "unparsable integer env var ignored",
                default_value);
    return default_value;
  }
  int64_t v = static_cast<int64_t>(parsed);
  if (v < min_value || v > max_value) {
    int64_t clamped = v < min_value ? min_value : max_value;
    WarnEnvOnce(name, raw, "env var out of range, clamped", clamped);
    return clamped;
  }
  return v;
}

bool ParseEnvBool(const char* name, bool default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  std::string word = Trim(raw);
  for (char& c : word) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  if (word == "1" || word == "true" || word == "yes" || word == "on") {
    return true;
  }
  if (word == "0" || word == "false" || word == "no" || word == "off") {
    return false;
  }
  WarnEnvOnce(name, raw, "unparsable boolean env var ignored",
              default_value ? 1 : 0);
  return default_value;
}

}  // namespace xnfdb
