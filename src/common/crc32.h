// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) used to make every
// persisted byte self-verifying: the v2 database/cache file formats carry a
// CRC per section plus a whole-file footer, and the write-back journal is
// checksummed the same way.

#ifndef XNFDB_COMMON_CRC32_H_
#define XNFDB_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace xnfdb {

// CRC of `data`, optionally continuing from a previous CRC (pass the prior
// return value as `seed` to checksum data arriving in chunks).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

// Lower-case fixed-width hex rendering ("00000000".."ffffffff"), the form
// stored in file headers and footers.
std::string Crc32Hex(uint32_t crc);

}  // namespace xnfdb

#endif  // XNFDB_COMMON_CRC32_H_
