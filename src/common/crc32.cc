#include "common/crc32.h"

#include <array>

namespace xnfdb {

namespace {

// Table-driven CRC-32, reflected, polynomial 0xEDB88320.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string Crc32Hex(uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[i] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

}  // namespace xnfdb
