#include "common/status.h"

namespace xnfdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace xnfdb
