#include "common/file_format.h"

#include <cstdlib>
#include <sstream>

#include "common/crc32.h"
#include "common/env.h"

namespace xnfdb {

namespace {

Result<uint32_t> ParseCrcHex(const std::string& hex) {
  if (hex.size() != 8) return Status::IoError("malformed CRC field");
  uint32_t crc = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Status::IoError("malformed CRC field");
    }
    crc = (crc << 4) | static_cast<uint32_t>(digit);
  }
  return crc;
}

}  // namespace

void WriteSectionedFile(std::ostream& out, const std::string& magic,
                        const std::vector<FileSection>& sections) {
  out << magic << "\n";
  uint32_t body_crc = 0;
  for (const FileSection& s : sections) {
    std::ostringstream header;
    header << "SECTION " << s.name << " " << s.records << " "
           << s.payload.size() << " " << Crc32Hex(Crc32(s.payload)) << "\n";
    body_crc = Crc32(header.str(), body_crc);
    body_crc = Crc32(s.payload, body_crc);
    out << header.str() << s.payload;
  }
  out << "FOOTER " << sections.size() << " " << Crc32Hex(body_crc) << "\n"
      << "END\n";
}

Result<std::vector<FileSection>> ReadSectionedFile(std::istream& in) {
  std::vector<FileSection> sections;
  uint32_t body_crc = 0;
  std::string line;
  while (true) {
    if (!std::getline(in, line)) {
      return Status::IoError("truncated file: missing footer");
    }
    std::istringstream header(line);
    std::string keyword;
    if (!(header >> keyword)) {
      return Status::IoError("malformed section header");
    }
    if (keyword == "FOOTER") {
      size_t count;
      std::string crc_hex;
      if (!(header >> count >> crc_hex)) {
        return Status::IoError("malformed footer");
      }
      if (count != sections.size()) {
        return Status::IoError("footer section count mismatch");
      }
      XNFDB_ASSIGN_OR_RETURN(uint32_t expected, ParseCrcHex(crc_hex));
      if (expected != body_crc) {
        return Status::IoError("file body CRC mismatch");
      }
      // eof() after a successful getline means the newline was missing —
      // the terminator line itself was truncated.
      if (!std::getline(in, line) || line != "END" || in.eof()) {
        return Status::IoError("missing END terminator");
      }
      if (in.peek() != std::char_traits<char>::eof()) {
        return Status::IoError("trailing data after END terminator");
      }
      return sections;
    }
    if (keyword != "SECTION") {
      return Status::IoError("expected SECTION or FOOTER, got '" + keyword +
                             "'");
    }
    FileSection section;
    size_t bytes;
    std::string crc_hex;
    if (!(header >> section.name >> section.records >> bytes >> crc_hex)) {
      return Status::IoError("malformed section header");
    }
    // Reject hostile/corrupt sizes before allocating.
    int64_t remaining = StreamRemainingBytes(in);
    if (remaining >= 0 && static_cast<int64_t>(bytes) > remaining) {
      return Status::IoError("section " + section.name + " claims " +
                             std::to_string(bytes) +
                             " bytes but only " + std::to_string(remaining) +
                             " remain in the file");
    }
    section.payload.resize(bytes);
    in.read(section.payload.data(), static_cast<std::streamsize>(bytes));
    if (static_cast<size_t>(in.gcount()) != bytes) {
      return Status::IoError("section " + section.name + " truncated");
    }
    XNFDB_ASSIGN_OR_RETURN(uint32_t expected, ParseCrcHex(crc_hex));
    if (expected != Crc32(section.payload)) {
      return Status::IoError("section " + section.name + " CRC mismatch");
    }
    body_crc = Crc32(line, body_crc);
    body_crc = Crc32("\n", body_crc);
    body_crc = Crc32(section.payload, body_crc);
    sections.push_back(std::move(section));
  }
}

}  // namespace xnfdb
