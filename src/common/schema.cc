#include "common/schema.h"

#include <cctype>

namespace xnfdb {

bool IdentEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpperIdent(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = std::toupper(static_cast<unsigned char>(c));
  return out;
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (IdentEquals(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Schema::ResolveColumn(const std::string& name,
                                  const std::string& context) const {
  int idx = FindColumn(name);
  if (idx < 0) {
    return Status::SemanticError("column '" + name + "' not found in " +
                                 context);
  }
  return idx;
}

Status Schema::ValidateTuple(const Tuple& tuple) const {
  if (tuple.size() != columns_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema arity " + std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Value& v = tuple[i];
    if (v.is_null()) continue;
    DataType want = columns_[i].type;
    DataType have = v.type();
    bool ok = have == want ||
              (want == DataType::kDouble && have == DataType::kInt);
    if (!ok) {
      return Status::InvalidArgument(
          "value " + v.ToString() + " has type " + DataTypeName(have) +
          " but column '" + columns_[i].name + "' expects " +
          DataTypeName(want));
    }
  }
  return Status::Ok();
}

std::string Schema::ToString() const {
  std::string s;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) s += ", ";
    s += columns_[i].name;
    s += " ";
    s += DataTypeName(columns_[i].type);
  }
  return s;
}

}  // namespace xnfdb
