// Leveled structured logging: one JSON object per line, tagged with a
// per-subsystem channel, e.g.
//
//   {"ts_us":1722945612345678,"level":"warn","channel":"slowlog",
//    "msg":"slow query","total_us":15234,"text":"SELECT ..."}
//
// Design goals:
//  * disabled levels cost one relaxed atomic load — instrumenting a hot
//    path with trace/debug lines is free when they are off;
//  * machine-parseable output (JSON lines) so the slow-query log and any
//    diagnostic stream can be grepped/jq'ed without a format parser;
//  * environment-controlled:
//      XNFDB_LOG_LEVEL = trace|debug|info|warn|error|off   (default warn)
//      XNFDB_LOG       = <path>                            (default stderr)
//  * a test sink hook (SetSink) so tests can assert on emitted lines
//    without touching the filesystem.

#ifndef XNFDB_COMMON_LOG_H_
#define XNFDB_COMMON_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace xnfdb {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// "trace".."error"/"off"; unknown strings parse as the default (warn).
LogLevel ParseLogLevel(const std::string& s);
const char* LogLevelName(LogLevel level);

// One structured field of a log line: either a string or an integer value.
struct LogField {
  std::string key;
  std::string str;
  int64_t num = 0;
  bool is_num = false;

  static LogField S(std::string key, std::string value) {
    LogField f;
    f.key = std::move(key);
    f.str = std::move(value);
    return f;
  }
  static LogField N(std::string key, int64_t value) {
    LogField f;
    f.key = std::move(key);
    f.num = value;
    f.is_num = true;
    return f;
  }
};

class Logger {
 public:
  // The process-wide logger. Level and destination are read from
  // XNFDB_LOG_LEVEL / XNFDB_LOG on first use.
  static Logger& Default();

  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  bool Enabled(LogLevel level) const { return level >= this->level(); }

  // Emits one JSON line on `channel`. No-op (one atomic load) when `level`
  // is below the configured threshold.
  void Log(LogLevel level, const std::string& channel, const std::string& msg,
           std::vector<LogField> fields = {});

  // Redirects output to `sink` (tests). Pass nullptr to restore the
  // default destination (XNFDB_LOG path or stderr). Any pending coalesced
  // warn summary is flushed to the previous destination first.
  using Sink = std::function<void(const std::string& line)>;
  void SetSink(Sink sink);

  // Emits the pending `repeated=N` summary line, if any. Identical
  // consecutive warn+ lines (same channel, msg and string-field values)
  // are suppressed after the first; the run ends — and the summary is
  // emitted — when a different line arrives or this is called.
  void FlushCoalesced();

 private:
  // Both require mu_ to be held.
  void EmitLocked(const std::string& line);
  void FlushCoalescedLocked();

  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::mutex mu_;          // serializes emits, coalescing state, sink swaps
  Sink sink_;              // empty => default destination
  std::string file_path_;  // XNFDB_LOG; empty => stderr
  std::string last_warn_key_;  // identity of the warn run being coalesced
  std::string pending_line_;   // newest suppressed line of the run
  int64_t suppressed_ = 0;     // lines suppressed in the current run
};

}  // namespace xnfdb

#endif  // XNFDB_COMMON_LOG_H_
