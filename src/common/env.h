// The file-system boundary of xnfdb (LevelDB-style). All durable I/O —
// catalog persistence, CO-cache save/restore, the write-back journal — goes
// through an `Env` so that tests can substitute a `FaultInjectionEnv`
// (common/fault_env.h) and exercise every failure point: short writes, torn
// writes, fsync failures, read corruption.
//
// `PosixEnv` (the `Env::Default()` singleton) is the real thing: buffered
// stdio writes, fsync-backed `Sync`, POSIX rename. `AtomicallyWriteFile`
// builds the crash-safe whole-file replace all savers use: write to a
// temporary sibling, flush, sync, close, then atomically rename over the
// destination — at no point is the previous file version lost.

#ifndef XNFDB_COMMON_ENV_H_
#define XNFDB_COMMON_ENV_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace xnfdb {

// A file being written sequentially. Writes are buffered until `Flush`;
// `Sync` additionally forces the data to stable storage. `Close` flushes
// and releases the descriptor (it is also called by the destructor, but
// only an explicit `Close` reports errors).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // The process-wide POSIX environment.
  static Env* Default();

  // Creates (or truncates) `path` for sequential writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  // Creates directory `path` (one level, not recursive); Ok when it
  // already exists. Diagnostic bundles are written into such a directory.
  virtual Status CreateDir(const std::string& path) = 0;

  // Reads the entire file into `*out` (replacing its contents).
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;

  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
};

// Crash-safe whole-file replace: writes `contents` to `path + ".tmp"`,
// flushes, syncs and closes it, then renames it over `path`. On any failure
// the previous version of `path` is untouched and the temporary is removed
// (best effort).
Status AtomicallyWriteFile(Env* env, const std::string& path,
                           std::string_view contents);

// Bytes between the stream's current read position and its end, or -1 when
// the stream is not seekable. Used to reject file-supplied lengths that
// exceed what the file can possibly hold, before allocating.
int64_t StreamRemainingBytes(std::istream& in);

}  // namespace xnfdb

#endif  // XNFDB_COMMON_ENV_H_
