// The runtime value model: a dynamically-typed SQL value.
//
// xnfdb supports four materialized types (INTEGER, DOUBLE, VARCHAR, BOOLEAN)
// plus SQL NULL. Values use three-valued logic for comparisons: any
// comparison involving NULL yields NULL (represented as a null Value of
// kBool type domain), and predicates treat non-TRUE as filtered out.

#ifndef XNFDB_COMMON_VALUE_H_
#define XNFDB_COMMON_VALUE_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace xnfdb {

enum class DataType {
  kNull = 0,  // Only for untyped NULL literals.
  kInt,
  kDouble,
  kString,
  kBool,
};

const char* DataTypeName(DataType type);

// A comparison operator resolved once (at plan/parse time) so per-row
// evaluation dispatches on an enum instead of string-matching the SQL
// spelling on every call.
enum class CompareOp {
  kEq,  // =
  kNe,  // <>
  kLt,  // <
  kLe,  // <=
  kGt,  // >
  kGe,  // >=
};

// Maps the SQL spelling ("=", "<>", "<", "<=", ">", ">=") to its enum.
// Returns false (leaving *out untouched) for any other string.
bool ParseCompareOp(const std::string& op, CompareOp* out);

const char* CompareOpName(CompareOp op);

// A single SQL value. Copyable; strings are owned.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}  // SQL NULL
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}
  explicit Value(bool v) : rep_(v) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  DataType type() const;

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const;  // Promotes ints.
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  bool AsBool() const { return std::get<bool>(rep_); }

  // SQL equality (NULL-safe variants below): requires comparable types
  // (numeric with numeric, string with string, bool with bool). Comparing
  // incompatible non-null types returns false/ordering by type tag.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Total order usable for sorting/dedup: NULL sorts first, then by type.
  bool operator<(const Value& other) const;

  // Three-valued comparison: returns NULL Value when either side is NULL,
  // otherwise a bool Value.
  static Value Compare(const Value& a, const Value& b, CompareOp op);

  // Arithmetic with numeric promotion; NULL-propagating.
  static Result<Value> Add(const Value& a, const Value& b);
  static Result<Value> Sub(const Value& a, const Value& b);
  static Result<Value> Mul(const Value& a, const Value& b);
  static Result<Value> Div(const Value& a, const Value& b);

  // Hash consistent with operator== for same-type values.
  size_t Hash() const;

  // SQL-literal-ish rendering: NULL, 42, 3.5, 'text', TRUE.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> rep_;
};

// A row of values. Kept as a plain vector for cheap moves and splicing,
// which the executor relies on.
using Tuple = std::vector<Value>;

// Hash of a whole tuple (for hash joins / distinct).
size_t HashTuple(const Tuple& t);

std::string TupleToString(const Tuple& t);

// Lossless line-oriented text encoding used by the persistence layers
// (cache files, database files): "N", "I <v>", "D <v>", "B 0|1",
// "S <len> <bytes>", each followed by a newline.
void WriteValueText(std::ostream& out, const Value& v);
Result<Value> ReadValueText(std::istream& in);

}  // namespace xnfdb

#endif  // XNFDB_COMMON_VALUE_H_
