#include "common/env.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <istream>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace xnfdb {

namespace {

Status ErrnoError(const std::string& context) {
  std::string message = context + ": " + std::strerror(errno);
  // Every real I/O error is a forensic event: the choke point all PosixEnv
  // failure paths funnel through feeds the flight recorder.
  obs::FlightRecorder::Default().Record("env", "error", "io error", message);
  return Status::IoError(message);
}

// Registry handles are stable; look each name up once per process.
obs::Counter* EnvCounter(const char* name) {
  return obs::MetricsRegistry::Default().GetCounter(name);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    static obs::Counter* bytes_written = EnvCounter("env.bytes_written");
    if (file_ == nullptr) return Status::IoError(path_ + " is closed");
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return ErrnoError("write " + path_);
    }
    bytes_written->Increment(static_cast<int64_t>(data.size()));
    return Status::Ok();
  }

  Status Flush() override {
    if (file_ == nullptr) return Status::IoError(path_ + " is closed");
    if (std::fflush(file_) != 0) return ErrnoError("flush " + path_);
    return Status::Ok();
  }

  Status Sync() override {
    static obs::Counter* syncs = EnvCounter("env.syncs");
    XNFDB_RETURN_IF_ERROR(Flush());
    if (::fsync(fileno(file_)) != 0) return ErrnoError("fsync " + path_);
    syncs->Increment();
    return Status::Ok();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::Ok();
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) return ErrnoError("close " + path_);
    return Status::Ok();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    static obs::Counter* opened = EnvCounter("env.files_opened");
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return ErrnoError("open " + path + " for writing");
    opened->Increment();
    return std::unique_ptr<WritableFile>(new PosixWritableFile(f, path));
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    static obs::Counter* reads = EnvCounter("env.reads");
    static obs::Counter* bytes_read = EnvCounter("env.bytes_read");
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return ErrnoError("open " + path);
    out->clear();
    char buffer[8192];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      out->append(buffer, n);
    }
    Status status =
        std::ferror(f) ? ErrnoError("read " + path) : Status::Ok();
    std::fclose(f);
    if (status.ok()) {
      reads->Increment();
      bytes_read->Increment(static_cast<int64_t>(out->size()));
    }
    return status;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    static obs::Counter* renames = EnvCounter("env.renames");
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoError("rename " + from + " -> " + to);
    }
    renames->Increment();
    return Status::Ok();
  }

  Status RemoveFile(const std::string& path) override {
    static obs::Counter* removes = EnvCounter("env.removes");
    if (std::remove(path.c_str()) != 0) {
      return ErrnoError("remove " + path);
    }
    removes->Increment();
    return Status::Ok();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoError("mkdir " + path);
    }
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status AtomicallyWriteFile(Env* env, const std::string& path,
                           std::string_view contents) {
  // Unique temp name: concurrent saves to the same path must not truncate
  // each other's in-flight temp file (whichever rename lands last wins,
  // but the destination is always a complete file).
  static std::atomic<uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  auto cleanup = [&](Status status) {
    env->RemoveFile(tmp);  // best effort; the error already dominates
    return status;
  };
  Result<std::unique_ptr<WritableFile>> file = env->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  std::unique_ptr<WritableFile> out = std::move(file).value();
  Status status = out->Append(contents);
  if (status.ok()) status = out->Sync();
  if (status.ok()) status = out->Close();
  if (!status.ok()) return cleanup(status);
  status = env->RenameFile(tmp, path);
  if (!status.ok()) return cleanup(status);
  return Status::Ok();
}

int64_t StreamRemainingBytes(std::istream& in) {
  std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || !in.good()) {
    in.clear();
    in.seekg(pos);
    return -1;
  }
  return static_cast<int64_t>(end - pos);
}

}  // namespace xnfdb
