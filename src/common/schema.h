// Column and Schema descriptions shared by the storage layer, the query
// graph model, and the executor.

#ifndef XNFDB_COMMON_SCHEMA_H_
#define XNFDB_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace xnfdb {

// One column of a table or derived stream.
struct Column {
  std::string name;
  DataType type = DataType::kNull;
};

// An ordered list of columns. Lookup is case-insensitive, following SQL
// identifier semantics (identifiers are normalized to upper case by the
// lexer, but data values are not).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  bool empty() const { return columns_.empty(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  // Index of `name` (case-insensitive), or -1 if absent.
  int FindColumn(const std::string& name) const;

  // Like FindColumn but errors out with the table context in the message.
  Result<int> ResolveColumn(const std::string& name,
                            const std::string& context) const;

  // Checks a tuple against this schema: arity and per-column type
  // compatibility (NULL allowed anywhere; INT accepted for DOUBLE columns).
  Status ValidateTuple(const Tuple& tuple) const;

  // "name TYPE, name TYPE, ..."
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

// Case-insensitive string equality for SQL identifiers.
bool IdentEquals(const std::string& a, const std::string& b);

// Upper-cases ASCII identifiers.
std::string ToUpperIdent(const std::string& s);

}  // namespace xnfdb

#endif  // XNFDB_COMMON_SCHEMA_H_
