#include "common/log.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/flight_recorder.h"

namespace xnfdb {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LogLevel ParseLogLevel(const std::string& raw) {
  std::string s;
  s.reserve(raw.size());
  for (char c : raw) {
    s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off" || s == "none") return LogLevel::kOff;
  return LogLevel::kWarn;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

Logger& Logger::Default() {
  static Logger* logger = [] {
    auto* l = new Logger();  // never dies: log sites may run at exit
    if (const char* level = std::getenv("XNFDB_LOG_LEVEL")) {
      l->set_level(ParseLogLevel(level));
    }
    if (const char* path = std::getenv("XNFDB_LOG")) {
      l->file_path_ = path;
    }
    return l;
  }();
  return *logger;
}

void Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  FlushCoalescedLocked();  // the summary belongs to the old destination
  sink_ = std::move(sink);
}

void Logger::FlushCoalesced() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushCoalescedLocked();
  last_warn_key_.clear();
}

void Logger::Log(LogLevel level, const std::string& channel,
                 const std::string& msg, std::vector<LogField> fields) {
  const bool is_warn = level >= LogLevel::kWarn && level < LogLevel::kOff;
  if (is_warn) {
    // Warn+ lines feed the flight recorder even when the logger itself is
    // silenced: forensics must survive XNFDB_LOG_LEVEL=off. Only string
    // fields go into the detail — numeric fields (elapsed times, counters)
    // vary per repeat and would defeat the recorder's coalescing.
    std::string detail;
    for (const LogField& f : fields) {
      if (f.is_num) continue;
      if (!detail.empty()) detail += ' ';
      detail += f.key + "=" + f.str;
    }
    obs::FlightRecorder::Default().Record(channel, LogLevelName(level), msg,
                                          detail);
  }
  if (!Enabled(level)) return;
  std::string line;
  line.reserve(128);
  line += "{\"ts_us\":" + std::to_string(NowUs());
  line += ",\"level\":\"";
  line += LogLevelName(level);
  line += "\",\"channel\":\"" + JsonEscape(channel) + "\"";
  line += ",\"msg\":\"" + JsonEscape(msg) + "\"";
  for (const LogField& f : fields) {
    line += ",\"" + JsonEscape(f.key) + "\":";
    if (f.is_num) {
      line += std::to_string(f.num);
    } else {
      line += "\"" + JsonEscape(f.str) + "\"";
    }
  }
  line += "}";

  std::lock_guard<std::mutex> lock(mu_);
  if (is_warn) {
    std::string key;
    key.reserve(64);
    key += LogLevelName(level);
    key += '|';
    key += channel;
    key += '|';
    key += msg;
    for (const LogField& f : fields) {
      if (f.is_num) continue;
      key += '|';
      key += f.key;
      key += '=';
      key += f.str;
    }
    if (key == last_warn_key_) {
      ++suppressed_;
      pending_line_ = std::move(line);  // summary carries the newest numbers
      return;
    }
    FlushCoalescedLocked();
    last_warn_key_ = std::move(key);
  } else {
    // A different (sub-warn) line ends the run: emit the summary first so
    // the stream stays ordered, then forget the run.
    FlushCoalescedLocked();
    last_warn_key_.clear();
  }
  EmitLocked(line);
}

void Logger::FlushCoalescedLocked() {
  if (suppressed_ == 0) return;
  std::string line = std::move(pending_line_);
  line.insert(line.size() - 1, ",\"repeated\":" + std::to_string(suppressed_));
  suppressed_ = 0;
  pending_line_.clear();
  EmitLocked(line);
}

void Logger::EmitLocked(const std::string& line) {
  if (sink_) {
    sink_(line);
    return;
  }
  if (!file_path_.empty()) {
    std::ofstream out(file_path_, std::ios::app);
    if (out) {
      out << line << "\n";
      return;
    }
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace xnfdb
