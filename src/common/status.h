// Error-handling primitives for xnfdb.
//
// The project does not use exceptions. Fallible operations return `Status`
// (or `Result<T>` when they also produce a value). Both carry an error code
// and a human-readable message.
//
// Example:
//   Result<Table*> r = catalog.GetTable("EMP");
//   if (!r.ok()) return r.status();
//   Table* table = r.value();

#ifndef XNFDB_COMMON_STATUS_H_
#define XNFDB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace xnfdb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kSemanticError,
  kUnsupported,
  kExecutionError,
  kIoError,
  kInternal,
  // Resource-governor terminations (see exec/query_context.h): the query
  // was stopped cooperatively, not by a fault in the engine.
  kCancelled,          // explicit Cancel() / .kill
  kDeadlineExceeded,   // per-query deadline passed
  kResourceExhausted,  // row/memory budget or admission capacity exceeded
};

// Returns a short human-readable name, e.g. "ParseError".
const char* StatusCodeName(StatusCode code);

// The outcome of a fallible operation: a code plus an optional message.
// Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status SemanticError(std::string m) {
    return Status(StatusCode::kSemanticError, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status ExecutionError(std::string m) {
    return Status(StatusCode::kExecutionError, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  // True for the three governor termination codes: the query was stopped
  // deliberately (kill, deadline, or budget), not by an engine fault.
  bool IsGovernorTermination() const {
    return code_ == StatusCode::kCancelled ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kResourceExhausted;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value or an error. `value()` must only be called when `ok()`.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status from an expression, RocksDB/Abseil style.
#define XNFDB_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::xnfdb::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

// Evaluates a Result<T> expression; on error returns its status, otherwise
// assigns the value to `lhs`. `lhs` must be a declaration or assignable.
#define XNFDB_ASSIGN_OR_RETURN(lhs, expr)          \
  XNFDB_ASSIGN_OR_RETURN_IMPL(                     \
      XNFDB_STATUS_CONCAT(_result_, __LINE__), lhs, expr)

#define XNFDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define XNFDB_STATUS_CONCAT(a, b) XNFDB_STATUS_CONCAT_IMPL(a, b)
#define XNFDB_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace xnfdb

#endif  // XNFDB_COMMON_STATUS_H_
