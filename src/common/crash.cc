#include "common/crash.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define XNFDB_HAVE_EXECINFO 1
#endif
#if __has_include(<cxxabi.h>)
#include <cxxabi.h>
#define XNFDB_HAVE_CXXABI 1
#endif
#endif

#include "obs/flight_recorder.h"

namespace xnfdb {

namespace {

constexpr size_t kContextBytes = 16384;
constexpr size_t kEventDumpBytes = 24576;
constexpr size_t kMaxTailEvents = 64;

// One normal-context-refreshed, signal-context-read text buffer. Writers
// serialize on ctx_mu (they can lock; they are ordinary threads); the
// crash-time reader validates the seqlock word instead: an even, unchanged
// `seq` across the copy means the content is consistent.
struct ContextBuf {
  std::atomic<uint32_t> seq{0};
  char text[kContextBytes] = {};
};

std::mutex* ContextMutex() {
  static std::mutex* mu = new std::mutex();
  return mu;
}

ContextBuf g_metrics_ctx;
ContextBuf g_queries_ctx;

std::atomic<bool> g_installed{false};
char g_crash_dir[512] = {};
// Cached at install time so the handler never runs the Default() static
// initializer path.
obs::FlightRecorder* g_recorder = nullptr;
std::terminate_handler g_prev_terminate = nullptr;

void SetContext(ContextBuf* buf, std::string_view text) {
  std::lock_guard<std::mutex> lock(*ContextMutex());
  uint32_t s = buf->seq.load(std::memory_order_relaxed);
  buf->seq.store(s + 1, std::memory_order_release);  // odd: mid-update
  size_t n = text.size() < kContextBytes - 1 ? text.size() : kContextBytes - 1;
  std::memcpy(buf->text, text.data(), n);
  buf->text[n] = '\0';
  buf->seq.store(s + 2, std::memory_order_release);
}

// --- async-signal-safe helpers -------------------------------------------

void WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w <= 0) {
      if (errno == EINTR) continue;
      return;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

void WriteStr(int fd, const char* s) { WriteAll(fd, s, std::strlen(s)); }

void WriteInt(int fd, int64_t v) {
  char digits[24];
  size_t n = 0;
  bool neg = v < 0;
  uint64_t u = neg ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
  do {
    digits[n++] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0 && n < sizeof(digits));
  if (neg) WriteAll(fd, "-", 1);
  while (n > 0) WriteAll(fd, &digits[--n], 1);
}

// Appends an integer to a NUL-terminated buffer (for the report path).
void AppendIntTo(char* buf, size_t cap, int64_t v) {
  size_t len = std::strlen(buf);
  char digits[24];
  size_t n = 0;
  uint64_t u = v < 0 ? 0 : static_cast<uint64_t>(v);
  do {
    digits[n++] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0 && n < sizeof(digits));
  while (n > 0 && len + 1 < cap) buf[len++] = digits[--n];
  buf[len] = '\0';
}

void AppendStrTo(char* buf, size_t cap, const char* s) {
  size_t len = std::strlen(buf);
  while (*s != '\0' && len + 1 < cap) buf[len++] = *s++;
  buf[len] = '\0';
}

// Copies a context buffer under its seqlock; appends a torn-read note when
// the writer raced us. Returns bytes copied.
size_t ReadContext(const ContextBuf& buf, char* out, size_t cap) {
  uint32_t s1 = buf.seq.load(std::memory_order_acquire);
  size_t n = 0;
  while (n + 1 < cap && buf.text[n] != '\0') {
    out[n] = buf.text[n];
    ++n;
  }
  out[n] = '\0';
  uint32_t s2 = buf.seq.load(std::memory_order_acquire);
  if ((s1 & 1) != 0 || s1 != s2) {
    const char* note = "\n(context buffer was mid-update; content may be "
                       "torn)\n";
    size_t note_len = std::strlen(note);
    if (n + note_len + 1 < cap) {
      std::memcpy(out + n, note, note_len + 1);
      n += note_len;
    }
  }
  return n;
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    default: return "signal";
  }
}

// Writes the full report body to `fd`. `sig` <= 0 means a non-signal
// reason (std::terminate, or a live `.diag`-style render). Signal-context
// callers must pass `with_backtrace` — the call stack at the point of
// death is the whole point; the live path skips it (its own stack is
// noise).
void WriteReportBody(int fd, const char* reason, int sig,
                     bool with_backtrace) {
  // Static scratch: the handler is single-shot (guarded by the caller), so
  // static buffers are safe and keep the handler stack tiny.
  static char scratch[kContextBytes];
  static char events[kEventDumpBytes];

  WriteStr(fd, "=== xnfdb crash report ===\n");
  WriteStr(fd, "reason: ");
  WriteStr(fd, reason);
  if (sig > 0) {
    WriteStr(fd, " (signal ");
    WriteInt(fd, sig);
    WriteStr(fd, ")");
  }
  WriteStr(fd, "\npid: ");
  WriteInt(fd, static_cast<int64_t>(::getpid()));
  WriteStr(fd, "\ntime_unix: ");
  WriteInt(fd, static_cast<int64_t>(::time(nullptr)));
  WriteStr(fd, "\n\n--- backtrace ---\n");
  if (with_backtrace) {
#if defined(XNFDB_HAVE_EXECINFO)
    void* frames[64];
    int depth = ::backtrace(frames, 64);
    ::backtrace_symbols_fd(frames, depth, fd);
#else
    WriteStr(fd, "(backtrace unavailable on this platform)\n");
#endif
  } else {
    WriteStr(fd, "(not a crash: backtrace omitted)\n");
  }

  WriteStr(fd, "\n--- flight recorder (oldest of tail first) ---\n");
  if (g_recorder != nullptr) {
    size_t n = g_recorder->DumpTailUnsafe(events, sizeof(events),
                                          kMaxTailEvents);
    if (n == 0) {
      WriteStr(fd, "(no events recorded)\n");
    } else {
      WriteAll(fd, events, n);
    }
  } else {
    WriteStr(fd, "(flight recorder not attached)\n");
  }

  WriteStr(fd, "\n--- active queries (SYS$QUERIES at last refresh) ---\n");
  size_t n = ReadContext(g_queries_ctx, scratch, sizeof(scratch));
  if (n == 0) {
    WriteStr(fd, "(no active-query context captured)\n");
  } else {
    WriteAll(fd, scratch, n);
  }

  WriteStr(fd, "\n--- metrics (at last refresh) ---\n");
  n = ReadContext(g_metrics_ctx, scratch, sizeof(scratch));
  if (n == 0) {
    WriteStr(fd, "(no metrics context captured)\n");
  } else {
    WriteAll(fd, scratch, n);
  }
  WriteStr(fd, "\n=== end crash report ===\n");
}

// Opens the report file and writes the body; falls back to stderr when the
// file cannot be created. Everything here is async-signal-safe.
void WriteCrashReport(const char* reason, int sig) {
  char path[640];
  path[0] = '\0';
  AppendStrTo(path, sizeof(path), g_crash_dir);
  AppendStrTo(path, sizeof(path), "/crash_");
  AppendIntTo(path, sizeof(path), static_cast<int64_t>(::getpid()));
  AppendStrTo(path, sizeof(path), "_");
  AppendIntTo(path, sizeof(path), static_cast<int64_t>(::time(nullptr)));
  AppendStrTo(path, sizeof(path), ".txt");

  int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  const bool to_file = fd >= 0;
  if (!to_file) fd = 2;
  WriteReportBody(fd, reason, sig, /*with_backtrace=*/true);
  if (to_file) {
    ::fsync(fd);
    ::close(fd);
    WriteStr(2, "xnfdb: fatal ");
    WriteStr(2, reason);
    WriteStr(2, ", crash report written to ");
    WriteStr(2, path);
    WriteStr(2, "\n");
  }
}

std::atomic<bool> g_reporting{false};

void CrashSignalHandler(int sig) {
  // SA_RESETHAND already restored the default disposition, so a second
  // fault inside the handler kills the process instead of recursing; the
  // flag additionally guards against a *different* signal arriving on
  // another thread mid-report.
  if (!g_reporting.exchange(true)) {
    WriteCrashReport(SignalName(sig), sig);
  }
  ::raise(sig);
}

void CrashTerminateHandler() {
  if (!g_reporting.exchange(true)) {
    char reason[256];
    reason[0] = '\0';
    AppendStrTo(reason, sizeof(reason), "std::terminate");
#if defined(XNFDB_HAVE_CXXABI)
    if (std::type_info* type = abi::__cxa_current_exception_type()) {
      AppendStrTo(reason, sizeof(reason), " (uncaught exception of type ");
      AppendStrTo(reason, sizeof(reason), type->name());
      AppendStrTo(reason, sizeof(reason), ")");
    }
#endif
    WriteCrashReport(reason, /*sig=*/0);
  }
  // abort() raises SIGABRT; restore the default disposition first so the
  // SIGABRT handler does not write a second report for the same death.
  ::signal(SIGABRT, SIG_DFL);
  std::abort();
}

}  // namespace

bool InstallCrashHandler(const std::string& dir) {
  static std::mutex* mu = new std::mutex();
  std::lock_guard<std::mutex> lock(*mu);
  if (g_installed.load(std::memory_order_acquire)) return true;
  if (dir.empty()) return false;
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) return false;
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) return false;
  std::strncpy(g_crash_dir, dir.c_str(), sizeof(g_crash_dir) - 1);
  g_crash_dir[sizeof(g_crash_dir) - 1] = '\0';
  g_recorder = &obs::FlightRecorder::Default();

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = CrashSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(sig, &sa, nullptr);
  }
  g_prev_terminate = std::set_terminate(CrashTerminateHandler);
  g_installed.store(true, std::memory_order_release);
  return true;
}

bool InstallCrashHandlerFromEnv() {
  const char* dir = std::getenv("XNFDB_CRASH_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  return InstallCrashHandler(dir);
}

bool CrashHandlerInstalled() {
  return g_installed.load(std::memory_order_acquire);
}

std::string CrashReportDir() {
  return CrashHandlerInstalled() ? std::string(g_crash_dir) : std::string();
}

void SetCrashContextMetrics(std::string_view text) {
  SetContext(&g_metrics_ctx, text);
}

void SetCrashContextQueries(std::string_view text) {
  SetContext(&g_queries_ctx, text);
}

int CountCrashReports(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  int count = 0;
  while (struct dirent* e = ::readdir(d)) {
    const char* name = e->d_name;
    size_t len = std::strlen(name);
    if (len > 10 && std::strncmp(name, "crash_", 6) == 0 &&
        std::strcmp(name + len - 4, ".txt") == 0) {
      ++count;
    }
  }
  ::closedir(d);
  return count;
}

std::string RenderCrashStyleReport(const char* reason) {
  // Render through the same body writer the handler uses, via a pipe —
  // one formatter, two consumers, no drift between the live and the
  // post-mortem report layout.
  int fds[2];
  if (::pipe(fds) != 0) return "";
  // The body is bounded well below typical pipe capacity (64 KiB), but
  // write from a fork-free helper anyway: fill, close, then drain.
  // To stay simple and deadlock-free, cap the render at the pipe buffer.
  if (g_recorder == nullptr) g_recorder = &obs::FlightRecorder::Default();
  WriteReportBody(fds[1], reason, /*sig=*/0, /*with_backtrace=*/false);
  ::close(fds[1]);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fds[0]);
  return out;
}

}  // namespace xnfdb
