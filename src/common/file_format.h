// Shared framing of the v2 on-disk formats (database catalog, CO cache).
//
// A sectioned file is line-oriented text:
//
//   <magic line>                       e.g. "XNFDB 2"
//   SECTION <name> <records> <bytes> <crc32>
//   <exactly `bytes` bytes of payload>
//   ... more sections ...
//   FOOTER <section count> <crc32 over all section headers + payloads>
//   END
//
// Every payload byte is covered by its section CRC; every header byte by
// the footer CRC; the magic, FOOTER and END lines are matched exactly — so
// any truncation or bit flip anywhere in the file is detected and rejected
// with kIoError before the payload is interpreted.

#ifndef XNFDB_COMMON_FILE_FORMAT_H_
#define XNFDB_COMMON_FILE_FORMAT_H_

#include <iostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace xnfdb {

struct FileSection {
  std::string name;
  size_t records = 0;  // count of top-level records in the payload
  std::string payload;
};

// Writes magic line, sections, footer and END terminator.
void WriteSectionedFile(std::ostream& out, const std::string& magic,
                        const std::vector<FileSection>& sections);

// Reads and verifies the body of a sectioned file; the magic line must
// already have been consumed from `in`. Checks each section's size and CRC,
// the footer's section count and whole-body CRC, and the END terminator.
Result<std::vector<FileSection>> ReadSectionedFile(std::istream& in);

}  // namespace xnfdb

#endif  // XNFDB_COMMON_FILE_FORMAT_H_
