// Small string helpers used across modules.

#ifndef XNFDB_COMMON_STR_UTIL_H_
#define XNFDB_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xnfdb {

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Splits on `sep`, keeping empty pieces.
std::vector<std::string> Split(const std::string& s, char sep);

// Trims ASCII whitespace on both ends.
std::string Trim(const std::string& s);

// SQL LIKE with '%' and '_' wildcards (case-sensitive on data).
bool LikeMatch(const std::string& text, const std::string& pattern);

// Checked environment-variable integer: reads `name` and returns its value
// clamped to [min_value, max_value]. Unset, empty, or unparsable (trailing
// garbage, overflow) values yield `default_value`. The first time a
// variable is found malformed or out of range, one warning is logged on
// the "env" channel; later calls stay silent so per-query resolution does
// not spam the log. Every XNFDB_* tuning knob goes through here — ad-hoc
// atoi() parses accept garbage and negative values silently.
int64_t ParseEnvInt(const char* name, int64_t min_value, int64_t max_value,
                    int64_t default_value);

// Checked environment-variable boolean for on/off knobs. Accepts
// 1/true/yes/on and 0/false/no/off (case-insensitive, surrounding
// whitespace ignored). Unset or empty yields `default_value`; anything
// else yields `default_value` with the same warn-once behaviour as
// ParseEnvInt. Path-valued knobs (XNFDB_TRACE, XNFDB_CRASH_DIR) stay
// string-typed and do not go through here.
bool ParseEnvBool(const char* name, bool default_value);

}  // namespace xnfdb

#endif  // XNFDB_COMMON_STR_UTIL_H_
