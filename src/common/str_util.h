// Small string helpers used across modules.

#ifndef XNFDB_COMMON_STR_UTIL_H_
#define XNFDB_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace xnfdb {

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Splits on `sep`, keeping empty pieces.
std::vector<std::string> Split(const std::string& s, char sep);

// Trims ASCII whitespace on both ends.
std::string Trim(const std::string& s);

// SQL LIKE with '%' and '_' wildcards (case-sensitive on data).
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace xnfdb

#endif  // XNFDB_COMMON_STR_UTIL_H_
