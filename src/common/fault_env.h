// An `Env` decorator that injects I/O failures for durability testing — the
// standing infrastructure behind the crash-safety guarantees of the v2 file
// formats and the write-back journal.
//
// Fault kinds (composable; each cleared with `ClearFaults`):
//  * short/failed writes — every `Append` fails once `n` total bytes have
//    been written through this env;
//  * torn writes — as above, but the bytes up to the limit still reach the
//    underlying file, modelling a crash that persists a prefix;
//  * fsync failures — the next `n` `Sync` calls fail;
//  * rename failures — the next `n` `RenameFile` calls fail (the commit
//    point of an atomic replace);
//  * read corruption — a byte at a chosen offset is flipped in everything
//    `ReadFileToString` returns.
//
// Per-operation counters record how many calls and bytes flowed through,
// so tests can assert e.g. "exactly one sync before the rename".

#ifndef XNFDB_COMMON_FAULT_ENV_H_
#define XNFDB_COMMON_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/env.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace xnfdb {

class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base = Env::Default()) : base_(base) {}

  struct Counters {
    int64_t writable_files_opened = 0;
    int64_t appends = 0;
    int64_t bytes_appended = 0;  // bytes that reached the underlying file
    int64_t flushes = 0;
    int64_t syncs = 0;
    int64_t closes = 0;
    int64_t reads = 0;
    int64_t renames = 0;
    int64_t removes = 0;
    int64_t injected_errors = 0;  // faults actually fired
  };

  // --- fault plan ---------------------------------------------------------
  // Appends fail with kIoError once `n` total bytes have been appended
  // through this env (counting from now; n < 0 disables). With `torn`,
  // the prefix up to the budget is still written before failing.
  void FailAppendsAfterBytes(int64_t n, bool torn = false) {
    append_budget_ = n;
    torn_writes_ = torn;
  }
  void FailNextSyncs(int n) { failing_syncs_ = n; }
  void FailNextRenames(int n) { failing_renames_ = n; }
  // XORs `mask` (must be nonzero to corrupt) into the byte at `offset` of
  // every subsequent ReadFileToString result that is long enough.
  void CorruptReadAt(int64_t offset, uint8_t mask = 0x40) {
    corrupt_offset_ = offset;
    corrupt_mask_ = mask;
  }
  void ClearFaults() {
    append_budget_ = -1;
    torn_writes_ = false;
    failing_syncs_ = 0;
    failing_renames_ = 0;
    corrupt_offset_ = -1;
  }

  const Counters& counters() const { return counters_; }
  void ResetCounters() { counters_ = Counters(); }

  // --- Env ----------------------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Status ReadFileToString(const std::string& path, std::string* out) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;

 private:
  friend class FaultyWritableFile;

  // A fault fired: count it locally and in the process-wide registry
  // (`env.injected_errors`), so injected failures show up in the same
  // MetricsJson snapshot as the real I/O they displace.
  void CountInjectedError() {
    ++counters_.injected_errors;
    injected_errors_counter_->Increment();
    // Injected faults are forensic events like the real errors they model,
    // so fault-injection tests exercise the same recorder path.
    obs::FlightRecorder::Default().Record("env", "warn", "injected fault");
  }

  Env* base_;
  Counters counters_;
  obs::Counter* injected_errors_counter_ =
      obs::MetricsRegistry::Default().GetCounter("env.injected_errors");
  int64_t append_budget_ = -1;  // bytes until appends fail; <0 = unlimited
  bool torn_writes_ = false;
  int failing_syncs_ = 0;
  int failing_renames_ = 0;
  int64_t corrupt_offset_ = -1;
  uint8_t corrupt_mask_ = 0x40;
};

}  // namespace xnfdb

#endif  // XNFDB_COMMON_FAULT_ENV_H_
