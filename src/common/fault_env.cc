#include "common/fault_env.h"

namespace xnfdb {

// Wraps a base WritableFile; consults the owning env's fault plan on every
// operation so a plan change mid-save (or a byte budget spanning several
// files) behaves like a real device going bad.
class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(FaultInjectionEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    ++env_->counters_.appends;
    if (env_->append_budget_ >= 0 &&
        static_cast<int64_t>(data.size()) > env_->append_budget_) {
      env_->CountInjectedError();
      if (env_->torn_writes_ && env_->append_budget_ > 0) {
        std::string_view prefix =
            data.substr(0, static_cast<size_t>(env_->append_budget_));
        Status s = base_->Append(prefix);
        if (s.ok()) env_->counters_.bytes_appended += prefix.size();
      }
      env_->append_budget_ = 0;
      return Status::IoError("injected write error");
    }
    if (env_->append_budget_ >= 0) {
      env_->append_budget_ -= static_cast<int64_t>(data.size());
    }
    XNFDB_RETURN_IF_ERROR(base_->Append(data));
    env_->counters_.bytes_appended += data.size();
    return Status::Ok();
  }

  Status Flush() override {
    ++env_->counters_.flushes;
    return base_->Flush();
  }

  Status Sync() override {
    ++env_->counters_.syncs;
    if (env_->failing_syncs_ > 0) {
      --env_->failing_syncs_;
      env_->CountInjectedError();
      return Status::IoError("injected fsync failure");
    }
    return base_->Sync();
  }

  Status Close() override {
    ++env_->counters_.closes;
    return base_->Close();
  }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  ++counters_.writable_files_opened;
  XNFDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewWritableFile(path));
  return std::unique_ptr<WritableFile>(
      new FaultyWritableFile(this, std::move(base)));
}

Status FaultInjectionEnv::ReadFileToString(const std::string& path,
                                           std::string* out) {
  ++counters_.reads;
  XNFDB_RETURN_IF_ERROR(base_->ReadFileToString(path, out));
  if (corrupt_offset_ >= 0 &&
      corrupt_offset_ < static_cast<int64_t>(out->size())) {
    (*out)[static_cast<size_t>(corrupt_offset_)] ^=
        static_cast<char>(corrupt_mask_);
    CountInjectedError();
  }
  return Status::Ok();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  ++counters_.renames;
  if (failing_renames_ > 0) {
    --failing_renames_;
    CountInjectedError();
    return Status::IoError("injected rename failure");
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  ++counters_.removes;
  return base_->RemoveFile(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

}  // namespace xnfdb
