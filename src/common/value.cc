#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

#include "common/env.h"

namespace xnfdb {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt:
      return "INTEGER";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
    case DataType::kBool:
      return "BOOLEAN";
  }
  return "?";
}

DataType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInt;
    case 2:
      return DataType::kDouble;
    case 3:
      return DataType::kString;
    case 4:
      return DataType::kBool;
  }
  return DataType::kNull;
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(rep_)) {
    return static_cast<double>(std::get<int64_t>(rep_));
  }
  return std::get<double>(rep_);
}

namespace {

bool IsNumeric(const Value& v) {
  return v.type() == DataType::kInt || v.type() == DataType::kDouble;
}

// -1 / 0 / +1 comparison for two non-null values of comparable type.
// Falls back to type-tag ordering for incomparable types.
int CompareNonNull(const Value& a, const Value& b) {
  if (IsNumeric(a) && IsNumeric(b)) {
    if (a.type() == DataType::kInt && b.type() == DataType::kInt) {
      int64_t x = a.AsInt(), y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.AsDouble(), y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type() != b.type()) {
    return static_cast<int>(a.type()) < static_cast<int>(b.type()) ? -1 : 1;
  }
  switch (a.type()) {
    case DataType::kString: {
      int c = a.AsString().compare(b.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kBool: {
      int x = a.AsBool() ? 1 : 0, y = b.AsBool() ? 1 : 0;
      return x - y;
    }
    default:
      return 0;
  }
}

}  // namespace

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (IsNumeric(*this) != IsNumeric(other)) return false;
  if (!IsNumeric(*this) && type() != other.type()) return false;
  return CompareNonNull(*this, other) == 0;
}

bool Value::operator<(const Value& other) const {
  if (is_null()) return !other.is_null();
  if (other.is_null()) return false;
  return CompareNonNull(*this, other) < 0;
}

bool ParseCompareOp(const std::string& op, CompareOp* out) {
  if (op == "=") {
    *out = CompareOp::kEq;
  } else if (op == "<>") {
    *out = CompareOp::kNe;
  } else if (op == "<") {
    *out = CompareOp::kLt;
  } else if (op == "<=") {
    *out = CompareOp::kLe;
  } else if (op == ">") {
    *out = CompareOp::kGt;
  } else if (op == ">=") {
    *out = CompareOp::kGe;
  } else {
    return false;
  }
  return true;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Value Value::Compare(const Value& a, const Value& b, CompareOp op) {
  if (a.is_null() || b.is_null()) return Value::Null();
  int c = CompareNonNull(a, b);
  switch (op) {
    case CompareOp::kEq:
      return Value(c == 0);
    case CompareOp::kNe:
      return Value(c != 0);
    case CompareOp::kLt:
      return Value(c < 0);
    case CompareOp::kLe:
      return Value(c <= 0);
    case CompareOp::kGt:
      return Value(c > 0);
    case CompareOp::kGe:
      return Value(c >= 0);
  }
  return Value::Null();
}

namespace {

Result<Value> Arith(const Value& a, const Value& b, char op) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!IsNumeric(a) || !IsNumeric(b)) {
    return Status::ExecutionError(std::string("arithmetic '") + op +
                                  "' on non-numeric operands " + a.ToString() +
                                  ", " + b.ToString());
  }
  if (a.type() == DataType::kInt && b.type() == DataType::kInt && op != '/') {
    int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case '+':
        return Value(x + y);
      case '-':
        return Value(x - y);
      case '*':
        return Value(x * y);
    }
  }
  double x = a.AsDouble(), y = b.AsDouble();
  switch (op) {
    case '+':
      return Value(x + y);
    case '-':
      return Value(x - y);
    case '*':
      return Value(x * y);
    case '/':
      if (y == 0.0) return Status::ExecutionError("division by zero");
      // Integer division stays integral when it divides evenly, matching
      // the catalog's INTEGER columns through FK arithmetic.
      if (a.type() == DataType::kInt && b.type() == DataType::kInt &&
          a.AsInt() % b.AsInt() == 0) {
        return Value(a.AsInt() / b.AsInt());
      }
      return Value(x / y);
  }
  return Status::Internal("unknown arithmetic operator");
}

}  // namespace

Result<Value> Value::Add(const Value& a, const Value& b) {
  return Arith(a, b, '+');
}
Result<Value> Value::Sub(const Value& a, const Value& b) {
  return Arith(a, b, '-');
}
Result<Value> Value::Mul(const Value& a, const Value& b) {
  return Arith(a, b, '*');
}
Result<Value> Value::Div(const Value& a, const Value& b) {
  return Arith(a, b, '/');
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kInt:
      return std::hash<int64_t>()(AsInt());
    case DataType::kDouble: {
      double d = AsDouble();
      // Make 2.0 hash like the integer 2 so mixed-type joins work.
      if (d == std::floor(d) && std::abs(d) < 1e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case DataType::kString:
      return std::hash<std::string>()(AsString());
    case DataType::kBool:
      return std::hash<bool>()(AsBool());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt:
      return std::to_string(AsInt());
    case DataType::kDouble: {
      std::ostringstream os;
      os << std::get<double>(rep_);
      return os.str();
    }
    case DataType::kString:
      return "'" + AsString() + "'";
    case DataType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
  }
  return "?";
}

size_t HashTuple(const Tuple& t) {
  size_t h = 14695981039346656037ULL;
  for (const Value& v : t) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

void WriteValueText(std::ostream& out, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      out << "N";
      break;
    case DataType::kInt:
      out << "I " << v.AsInt();
      break;
    case DataType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << v.AsDouble();
      out << "D " << os.str();
      break;
    }
    case DataType::kString:
      out << "S " << v.AsString().size() << " " << v.AsString();
      break;
    case DataType::kBool:
      out << "B " << (v.AsBool() ? 1 : 0);
      break;
  }
  out << "\n";
}

Result<Value> ReadValueText(std::istream& in) {
  std::string tag;
  if (!(in >> tag)) return Status::IoError("unexpected end of value stream");
  if (tag == "N") return Value::Null();
  if (tag == "I") {
    int64_t v;
    if (!(in >> v)) return Status::IoError("bad integer value");
    return Value(v);
  }
  if (tag == "D") {
    double v;
    if (!(in >> v)) return Status::IoError("bad double value");
    return Value(v);
  }
  if (tag == "B") {
    int v;
    if (!(in >> v)) return Status::IoError("bad boolean value");
    return Value(v != 0);
  }
  if (tag == "S") {
    size_t len;
    if (!(in >> len)) return Status::IoError("bad string length");
    in.get();  // the separating space
    int64_t remaining = StreamRemainingBytes(in);
    if (remaining >= 0 && static_cast<int64_t>(len) > remaining) {
      return Status::IoError("string length " + std::to_string(len) +
                             " exceeds remaining input");
    }
    std::string s(len, '\0');
    in.read(s.data(), static_cast<std::streamsize>(len));
    if (static_cast<size_t>(in.gcount()) != len) {
      return Status::IoError("truncated string value");
    }
    return Value(std::move(s));
  }
  return Status::IoError("bad value tag '" + tag + "'");
}

std::string TupleToString(const Tuple& t) {
  std::string s = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) s += ", ";
    s += t[i].ToString();
  }
  s += ")";
  return s;
}

}  // namespace xnfdb
