// Crash diagnostics: when the process dies on a fatal signal (SIGSEGV,
// SIGABRT, SIGBUS, SIGFPE) or an unhandled exception reaches
// std::terminate, write a post-mortem report to XNFDB_CRASH_DIR before
// re-raising — a backtrace, the tail of the flight recorder, the last
// metrics snapshot, and the active-query table, so "what was the engine
// doing when it died?" has an answer on disk.
//
// Async-signal-safety: the handler runs with the world in an unknown state
// (a mutex may be held by the very thread that crashed), so it uses only
// raw open/write/fsync on file descriptors, backtrace_symbols_fd, and a
// hand-rolled integer formatter — no malloc, no locks, no stdio. The
// dynamic pieces (metrics text, active queries) are therefore NOT gathered
// at crash time: normal-context code refreshes two fixed-size seqlock'd
// buffers (SetCrashContextMetrics / SetCrashContextQueries) whenever it is
// cheap to do so — the Database on every sampler tick and rate-limited
// after query completion, the Governor on admission and release — and the
// handler copies whatever consistent content those buffers hold. The
// flight-recorder tail comes from FlightRecorder::DumpTailUnsafe, which is
// designed for exactly this caller.
//
// Installation is explicit and idempotent: the Database constructor calls
// InstallCrashHandlerFromEnv(), which is a no-op unless XNFDB_CRASH_DIR is
// set — an embedded host that owns its own signal disposition is never
// surprised. After writing the report the original disposition is restored
// and the signal re-raised, so exit codes, core dumps, and wait status all
// behave as if the handler had never existed.

#ifndef XNFDB_COMMON_CRASH_H_
#define XNFDB_COMMON_CRASH_H_

#include <string>
#include <string_view>

namespace xnfdb {

// Installs the signal handlers and std::terminate hook, creating `dir` if
// needed (reports land there as crash_<pid>_<seq>.txt). Idempotent; the
// first successful call wins and later calls return true without changes.
// Returns false when `dir` cannot be created.
bool InstallCrashHandler(const std::string& dir);

// InstallCrashHandler(XNFDB_CRASH_DIR); false when the variable is unset
// or empty.
bool InstallCrashHandlerFromEnv();

bool CrashHandlerInstalled();

// The installed report directory ("" when not installed).
std::string CrashReportDir();

// Refreshes the context buffers the crash handler copies into the report.
// Cheap (one memcpy under a seqlock), safe from any thread, and a no-op
// before installation. Content beyond the fixed buffer size (16 KiB each)
// is truncated.
void SetCrashContextMetrics(std::string_view text);
void SetCrashContextQueries(std::string_view text);

// Number of crash_*.txt reports in `dir` (0 when the directory is missing)
// — feeds the crash.reports_found gauge behind the built-in health rule.
int CountCrashReports(const std::string& dir);

// Renders the same report the signal handler would write (header, flight
// recorder tail, metrics and query context buffers — no backtrace, which
// only makes sense at the point of death). Used by the diagnostic-bundle
// path so a live `.diag` bundle and a post-mortem report line up.
std::string RenderCrashStyleReport(const char* reason);

}  // namespace xnfdb

#endif  // XNFDB_COMMON_CRASH_H_
