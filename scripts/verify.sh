#!/usr/bin/env bash
# Full verification: the tier-1 suite in a normal build, then the durability
# tests (fault injection, corruption fuzzing, write-back journal) under
# AddressSanitizer + UndefinedBehaviorSanitizer so that hostile inputs that
# would over-read or overflow are caught, not just mis-parsed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: full suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== sanitizers: durability tests under ASan+UBSan =="
cmake -B build-san -S . -DXNFDB_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j "$(nproc)" \
    --target env_test corruption_test journal_test persist_test \
             serialize_test >/dev/null
ctest --test-dir build-san --output-on-failure -j "$(nproc)" \
    -R 'Crc32|PosixEnv|FaultInjection|Corruption|Journal|Persist|Serialize'

echo "verify: OK"
