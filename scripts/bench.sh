#!/usr/bin/env bash
# Runs every bench_* target and collects the per-bench JSON metric
# snapshots as BENCH_<name>.json at the repo root, so the perf trajectory
# of the codebase accumulates as machine-readable artifacts.
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   shrink every workload to its smallest scale point (CI sanity
#             pass: exercises metric emission, not a real measurement).
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$PWD"

SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B build -S . >/dev/null
mapfile -t BENCHES < <(sed -n 's/^xnfdb_bench(\(.*\))$/\1/p' bench/CMakeLists.txt)
BENCHES+=(bench_cache_traversal)
cmake --build build -j "$(nproc)" --target "${BENCHES[@]}" >/dev/null

export XNFDB_BENCH_JSON_DIR="$ROOT"
if [ "$SMOKE" = 1 ]; then
  export XNFDB_BENCH_SMOKE=1
fi

# Run every bench even if one crashes; collect failures and exit non-zero
# at the end so CI flags the run while still producing the surviving
# BENCH_*.json artifacts.
FAILED=()
for bench in "${BENCHES[@]}"; do
  echo "== $bench =="
  extra_args=()
  if [ "$bench" = bench_cache_traversal ] && [ "$SMOKE" = 1 ]; then
    extra_args+=(--benchmark_min_time=0.05s)
  fi
  status=0
  "build/bench/$bench" "${extra_args[@]}" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "bench: $bench FAILED (exit $status)" >&2
    FAILED+=("$bench")
  fi
  echo
done

echo "bench: wrote $(ls BENCH_*.json 2>/dev/null | wc -l) BENCH_*.json snapshots"
if [ "${#FAILED[@]}" -gt 0 ]; then
  echo "bench: ${#FAILED[@]} bench(es) failed: ${FAILED[*]}" >&2
  exit 1
fi
