#!/usr/bin/env python3
"""Compare two BENCH_*.json snapshots (scripts/bench.sh output).

Usage: bench_compare.py OLD.json NEW.json [--threshold 0.20] [--report-only]
                        [--max-overhead FRAC] [--summary-title TITLE]

Prints a diff of every metric counter and every phase.*.us histogram
(sum and count), then applies the regression gate: the run fails (exit 1)
when NEW's phase.execute.us sum exceeds OLD's by more than --threshold
(default 20%). Pass --report-only to print the diff without gating —
e.g. when the two snapshots were taken at different workload scales
(full vs --smoke) and absolute times are not comparable.

--max-overhead is the profiler-overhead gate: OLD is the same workload run
with profiling off (XNFDB_QUERY_PROFILES=0) and NEW with it on, and the
execute phase may grow by at most FRAC (e.g. 0.05 = 5%). It replaces the
--threshold gate when given.

When $GITHUB_STEP_SUMMARY is set, a markdown per-phase delta table (plus
the gate verdict) is appended to it so the comparison lands in the CI job
summary.
"""

import argparse
import json
import os
import sys

GATE_HISTOGRAM = "phase.execute.us"


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")


def fmt_delta(old, new):
    if old == 0:
        return "n/a" if new == 0 else "+inf"
    return f"{(new - old) / old * 100.0:+.1f}%"


def counters(snap):
    return snap.get("metrics", {}).get("counters", {})


def phase_histograms(snap):
    hists = snap.get("metrics", {}).get("histograms", {})
    return {k: v for k, v in hists.items() if k.startswith("phase.")}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional execute-phase regression "
                         "(default 0.20 = 20%%)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the diff but never fail")
    ap.add_argument("--max-overhead", type=float, default=None,
                    help="profiler-overhead gate: allowed fractional growth "
                         "of the execute phase between an unprofiled (OLD) "
                         "and profiled (NEW) run of the same workload; "
                         "replaces the --threshold gate")
    ap.add_argument("--summary-title", default=None,
                    help="heading for the $GITHUB_STEP_SUMMARY section "
                         "(default derived from the gate mode)")
    args = ap.parse_args()

    old_snap, new_snap = load(args.old), load(args.new)
    print(f"bench_compare: {args.old} -> {args.new}")

    old_c, new_c = counters(old_snap), counters(new_snap)
    print(f"\n{'counter':<40} {'old':>12} {'new':>12} {'delta':>8}")
    for name in sorted(set(old_c) | set(new_c)):
        o, n = old_c.get(name, 0), new_c.get(name, 0)
        mark = "" if o == n else "  *"
        print(f"{name:<40} {o:>12} {n:>12} {fmt_delta(o, n):>8}{mark}")

    old_h, new_h = phase_histograms(old_snap), phase_histograms(new_snap)
    print(f"\n{'phase histogram':<28} {'old sum':>10} {'new sum':>10} "
          f"{'delta':>8} {'old n':>7} {'new n':>7}")
    for name in sorted(set(old_h) | set(new_h)):
        o, n = old_h.get(name, {}), new_h.get(name, {})
        osum, nsum = o.get("sum", 0), n.get("sum", 0)
        print(f"{name:<28} {osum:>10} {nsum:>10} {fmt_delta(osum, nsum):>8} "
              f"{o.get('count', 0):>7} {n.get('count', 0):>7}")

    old_exec = old_h.get(GATE_HISTOGRAM, {})
    new_exec = new_h.get(GATE_HISTOGRAM, {})
    osum, nsum = old_exec.get("sum", 0), new_exec.get("sum", 0)

    overhead_mode = args.max_overhead is not None
    allowance = args.max_overhead if overhead_mode else args.threshold
    gate_word = "profiler overhead" if overhead_mode else "regression"

    if args.report_only:
        verdict, code = "report-only: no gate applied", 0
    elif osum <= 0 or old_exec.get("count", 0) <= 0:
        verdict, code = (f"no {GATE_HISTOGRAM} baseline in {args.old}; "
                         f"gate skipped"), 0
    elif nsum > osum * (1.0 + allowance):
        verdict = (f"FAIL: {GATE_HISTOGRAM} sum {osum} -> {nsum} "
                   f"({fmt_delta(osum, nsum)}), over the "
                   f"{allowance * 100:.0f}% {gate_word} allowance")
        code = 1
    else:
        verdict = (f"OK: {GATE_HISTOGRAM} sum {osum} -> {nsum} "
                   f"({fmt_delta(osum, nsum)}) within the "
                   f"{allowance * 100:.0f}% {gate_word} allowance")
        code = 0
    print(f"\n{verdict}", file=sys.stderr if code else sys.stdout)

    write_step_summary(args, old_c, new_c, old_h, new_h, verdict, gate_word)
    return code


def write_step_summary(args, old_c, new_c, old_h, new_h, verdict, gate_word):
    """Appends a markdown per-phase delta table to the CI job summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    title = args.summary_title or f"bench_compare ({gate_word} gate)"
    lines = [f"### {title}", "",
             f"`{args.old}` → `{args.new}`", "",
             "| phase | old sum (us) | new sum (us) | delta | old n | new n |",
             "|---|---:|---:|---:|---:|---:|"]
    for name in sorted(set(old_h) | set(new_h)):
        o, n = old_h.get(name, {}), new_h.get(name, {})
        osum, nsum = o.get("sum", 0), n.get("sum", 0)
        lines.append(f"| `{name}` | {osum} | {nsum} | {fmt_delta(osum, nsum)}"
                     f" | {o.get('count', 0)} | {n.get('count', 0)} |")
    # Rewrite-rule activity: how often each rule fired / rejected matches
    # during the workload, so rule-behaviour drift shows up in the same CI
    # summary as the timing drift.
    rule_names = sorted(n for n in set(old_c) | set(new_c)
                        if n.startswith("rewrite.rule.") or
                        n == "rewrite.passes")
    if rule_names:
        lines += ["", "| rewrite counter | old | new | delta |",
                  "|---|---:|---:|---:|"]
        for name in rule_names:
            o, n = old_c.get(name, 0), new_c.get(name, 0)
            lines.append(f"| `{name}` | {o} | {n} | {fmt_delta(o, n)} |")
    lines += ["", f"**{verdict}**", ""]
    try:
        with open(path, "a") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as e:
        print(f"bench_compare: cannot append step summary: {e}",
              file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
