#!/usr/bin/env bash
# Crash-forensics smoke: SIGSEGV an engine process that is busy executing
# queries and assert the crash handler left a usable post-mortem — a report
# file carrying a backtrace and the flight-recorder tail of the queries it
# was running. Run from the repo root after building; BUILD_DIR overrides
# the build tree (default: build).
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
SHELL_BIN="$BUILD_DIR/examples/xnfdb_shell"
[ -x "$SHELL_BIN" ] || { echo "missing $SHELL_BIN — build first" >&2; exit 1; }

CRASH_DIR="$(mktemp -d)"
cleanup() { rm -rf "$CRASH_DIR"; }
trap cleanup EXIT

# Feed the shell an endless query stream through a FIFO so the process is
# mid-workload when the signal lands.
fifo="$CRASH_DIR/in"
mkfifo "$fifo"
yes 'SELECT NAME, KIND FROM SYS$METRICS;' > "$fifo" &
feeder=$!
XNFDB_CRASH_DIR="$CRASH_DIR" "$SHELL_BIN" < "$fifo" > /dev/null 2>&1 &
victim=$!

sleep 1
kill -SEGV "$victim" 2>/dev/null || true
set +e
wait "$victim"
status=$?
set -e
kill "$feeder" 2>/dev/null || true
wait "$feeder" 2>/dev/null || true

# The handler re-raises after writing, so the process must still die of
# SIGSEGV (128 + 11).
[ "$status" -eq 139 ] || {
  echo "expected the shell to die of SIGSEGV (139), got $status" >&2
  exit 1
}

report=$(ls "$CRASH_DIR"/crash_*.txt 2>/dev/null | head -1)
[ -n "$report" ] || { echo "no crash report written to $CRASH_DIR" >&2; exit 1; }
echo "--- crash report ($report) ---"
cat "$report"

grep -q -- '=== xnfdb crash report ===' "$report" \
  || { echo "report missing header" >&2; exit 1; }
grep -q -- '--- backtrace ---' "$report" \
  || { echo "report missing backtrace section" >&2; exit 1; }
grep -q 'query start' "$report" \
  || { echo "flight-recorder tail holds no query events" >&2; exit 1; }

echo "crash smoke OK: report has a backtrace and flight-recorder events"
