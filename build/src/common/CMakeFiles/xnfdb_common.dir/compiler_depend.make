# Empty compiler generated dependencies file for xnfdb_common.
# This may be replaced when dependencies are built.
