file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_common.dir/schema.cc.o"
  "CMakeFiles/xnfdb_common.dir/schema.cc.o.d"
  "CMakeFiles/xnfdb_common.dir/status.cc.o"
  "CMakeFiles/xnfdb_common.dir/status.cc.o.d"
  "CMakeFiles/xnfdb_common.dir/str_util.cc.o"
  "CMakeFiles/xnfdb_common.dir/str_util.cc.o.d"
  "CMakeFiles/xnfdb_common.dir/value.cc.o"
  "CMakeFiles/xnfdb_common.dir/value.cc.o.d"
  "libxnfdb_common.a"
  "libxnfdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
