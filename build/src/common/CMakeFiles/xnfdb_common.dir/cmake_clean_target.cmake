file(REMOVE_RECURSE
  "libxnfdb_common.a"
)
