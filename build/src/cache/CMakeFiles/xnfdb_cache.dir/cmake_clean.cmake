file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_cache.dir/cursor.cc.o"
  "CMakeFiles/xnfdb_cache.dir/cursor.cc.o.d"
  "CMakeFiles/xnfdb_cache.dir/serialize.cc.o"
  "CMakeFiles/xnfdb_cache.dir/serialize.cc.o.d"
  "CMakeFiles/xnfdb_cache.dir/workspace.cc.o"
  "CMakeFiles/xnfdb_cache.dir/workspace.cc.o.d"
  "CMakeFiles/xnfdb_cache.dir/writeback.cc.o"
  "CMakeFiles/xnfdb_cache.dir/writeback.cc.o.d"
  "CMakeFiles/xnfdb_cache.dir/xnf_cache.cc.o"
  "CMakeFiles/xnfdb_cache.dir/xnf_cache.cc.o.d"
  "libxnfdb_cache.a"
  "libxnfdb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
