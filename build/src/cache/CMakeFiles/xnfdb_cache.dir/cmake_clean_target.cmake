file(REMOVE_RECURSE
  "libxnfdb_cache.a"
)
