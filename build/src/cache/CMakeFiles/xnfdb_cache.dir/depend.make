# Empty dependencies file for xnfdb_cache.
# This may be replaced when dependencies are built.
