file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_semantics.dir/builder.cc.o"
  "CMakeFiles/xnfdb_semantics.dir/builder.cc.o.d"
  "libxnfdb_semantics.a"
  "libxnfdb_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
