
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semantics/builder.cc" "src/semantics/CMakeFiles/xnfdb_semantics.dir/builder.cc.o" "gcc" "src/semantics/CMakeFiles/xnfdb_semantics.dir/builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xnfdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/xnfdb_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/qgm/CMakeFiles/xnfdb_qgm.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/xnfdb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
