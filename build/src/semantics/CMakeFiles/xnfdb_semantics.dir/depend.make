# Empty dependencies file for xnfdb_semantics.
# This may be replaced when dependencies are built.
