file(REMOVE_RECURSE
  "libxnfdb_semantics.a"
)
