file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_storage.dir/catalog.cc.o"
  "CMakeFiles/xnfdb_storage.dir/catalog.cc.o.d"
  "CMakeFiles/xnfdb_storage.dir/persist.cc.o"
  "CMakeFiles/xnfdb_storage.dir/persist.cc.o.d"
  "CMakeFiles/xnfdb_storage.dir/table.cc.o"
  "CMakeFiles/xnfdb_storage.dir/table.cc.o.d"
  "libxnfdb_storage.a"
  "libxnfdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
