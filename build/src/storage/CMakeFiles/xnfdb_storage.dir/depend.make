# Empty dependencies file for xnfdb_storage.
# This may be replaced when dependencies are built.
