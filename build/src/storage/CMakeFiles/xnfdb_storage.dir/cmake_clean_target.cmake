file(REMOVE_RECURSE
  "libxnfdb_storage.a"
)
