file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_exec.dir/__/optimizer/planner.cc.o"
  "CMakeFiles/xnfdb_exec.dir/__/optimizer/planner.cc.o.d"
  "CMakeFiles/xnfdb_exec.dir/executor.cc.o"
  "CMakeFiles/xnfdb_exec.dir/executor.cc.o.d"
  "CMakeFiles/xnfdb_exec.dir/expr_eval.cc.o"
  "CMakeFiles/xnfdb_exec.dir/expr_eval.cc.o.d"
  "CMakeFiles/xnfdb_exec.dir/operators.cc.o"
  "CMakeFiles/xnfdb_exec.dir/operators.cc.o.d"
  "libxnfdb_exec.a"
  "libxnfdb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
