# Empty dependencies file for xnfdb_exec.
# This may be replaced when dependencies are built.
