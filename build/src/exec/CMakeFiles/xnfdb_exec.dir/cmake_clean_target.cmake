file(REMOVE_RECURSE
  "libxnfdb_exec.a"
)
