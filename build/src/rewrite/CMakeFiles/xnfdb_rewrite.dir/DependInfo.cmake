
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/nf_rules.cc" "src/rewrite/CMakeFiles/xnfdb_rewrite.dir/nf_rules.cc.o" "gcc" "src/rewrite/CMakeFiles/xnfdb_rewrite.dir/nf_rules.cc.o.d"
  "/root/repo/src/rewrite/rule.cc" "src/rewrite/CMakeFiles/xnfdb_rewrite.dir/rule.cc.o" "gcc" "src/rewrite/CMakeFiles/xnfdb_rewrite.dir/rule.cc.o.d"
  "/root/repo/src/rewrite/xnf_rewrite.cc" "src/rewrite/CMakeFiles/xnfdb_rewrite.dir/xnf_rewrite.cc.o" "gcc" "src/rewrite/CMakeFiles/xnfdb_rewrite.dir/xnf_rewrite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xnfdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qgm/CMakeFiles/xnfdb_qgm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
