# Empty compiler generated dependencies file for xnfdb_rewrite.
# This may be replaced when dependencies are built.
