file(REMOVE_RECURSE
  "libxnfdb_rewrite.a"
)
