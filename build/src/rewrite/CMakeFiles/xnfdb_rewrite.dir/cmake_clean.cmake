file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_rewrite.dir/nf_rules.cc.o"
  "CMakeFiles/xnfdb_rewrite.dir/nf_rules.cc.o.d"
  "CMakeFiles/xnfdb_rewrite.dir/rule.cc.o"
  "CMakeFiles/xnfdb_rewrite.dir/rule.cc.o.d"
  "CMakeFiles/xnfdb_rewrite.dir/xnf_rewrite.cc.o"
  "CMakeFiles/xnfdb_rewrite.dir/xnf_rewrite.cc.o.d"
  "libxnfdb_rewrite.a"
  "libxnfdb_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
