# Empty compiler generated dependencies file for xnfdb_qgm.
# This may be replaced when dependencies are built.
