file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_qgm.dir/dot.cc.o"
  "CMakeFiles/xnfdb_qgm.dir/dot.cc.o.d"
  "CMakeFiles/xnfdb_qgm.dir/qgm.cc.o"
  "CMakeFiles/xnfdb_qgm.dir/qgm.cc.o.d"
  "libxnfdb_qgm.a"
  "libxnfdb_qgm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_qgm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
