
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qgm/dot.cc" "src/qgm/CMakeFiles/xnfdb_qgm.dir/dot.cc.o" "gcc" "src/qgm/CMakeFiles/xnfdb_qgm.dir/dot.cc.o.d"
  "/root/repo/src/qgm/qgm.cc" "src/qgm/CMakeFiles/xnfdb_qgm.dir/qgm.cc.o" "gcc" "src/qgm/CMakeFiles/xnfdb_qgm.dir/qgm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xnfdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
