file(REMOVE_RECURSE
  "libxnfdb_qgm.a"
)
