# Empty compiler generated dependencies file for xnfdb_xnf.
# This may be replaced when dependencies are built.
