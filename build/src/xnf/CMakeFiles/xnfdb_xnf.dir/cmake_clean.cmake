file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_xnf.dir/compiler.cc.o"
  "CMakeFiles/xnfdb_xnf.dir/compiler.cc.o.d"
  "CMakeFiles/xnfdb_xnf.dir/fixpoint.cc.o"
  "CMakeFiles/xnfdb_xnf.dir/fixpoint.cc.o.d"
  "CMakeFiles/xnfdb_xnf.dir/op_count.cc.o"
  "CMakeFiles/xnfdb_xnf.dir/op_count.cc.o.d"
  "libxnfdb_xnf.a"
  "libxnfdb_xnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_xnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
