file(REMOVE_RECURSE
  "libxnfdb_xnf.a"
)
