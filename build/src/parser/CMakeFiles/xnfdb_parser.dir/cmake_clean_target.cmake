file(REMOVE_RECURSE
  "libxnfdb_parser.a"
)
