file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_parser.dir/ast.cc.o"
  "CMakeFiles/xnfdb_parser.dir/ast.cc.o.d"
  "CMakeFiles/xnfdb_parser.dir/lexer.cc.o"
  "CMakeFiles/xnfdb_parser.dir/lexer.cc.o.d"
  "CMakeFiles/xnfdb_parser.dir/parser.cc.o"
  "CMakeFiles/xnfdb_parser.dir/parser.cc.o.d"
  "libxnfdb_parser.a"
  "libxnfdb_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
