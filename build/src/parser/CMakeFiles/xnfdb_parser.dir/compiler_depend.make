# Empty compiler generated dependencies file for xnfdb_parser.
# This may be replaced when dependencies are built.
