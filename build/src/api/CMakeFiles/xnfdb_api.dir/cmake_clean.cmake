file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_api.dir/database.cc.o"
  "CMakeFiles/xnfdb_api.dir/database.cc.o.d"
  "libxnfdb_api.a"
  "libxnfdb_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
