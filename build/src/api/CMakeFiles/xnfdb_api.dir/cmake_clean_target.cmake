file(REMOVE_RECURSE
  "libxnfdb_api.a"
)
