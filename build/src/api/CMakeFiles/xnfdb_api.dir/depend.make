# Empty dependencies file for xnfdb_api.
# This may be replaced when dependencies are built.
