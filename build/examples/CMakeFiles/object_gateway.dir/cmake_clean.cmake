file(REMOVE_RECURSE
  "CMakeFiles/object_gateway.dir/object_gateway.cpp.o"
  "CMakeFiles/object_gateway.dir/object_gateway.cpp.o.d"
  "object_gateway"
  "object_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
