# Empty dependencies file for object_gateway.
# This may be replaced when dependencies are built.
