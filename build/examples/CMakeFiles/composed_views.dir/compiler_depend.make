# Empty compiler generated dependencies file for composed_views.
# This may be replaced when dependencies are built.
