file(REMOVE_RECURSE
  "CMakeFiles/composed_views.dir/composed_views.cpp.o"
  "CMakeFiles/composed_views.dir/composed_views.cpp.o.d"
  "composed_views"
  "composed_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composed_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
