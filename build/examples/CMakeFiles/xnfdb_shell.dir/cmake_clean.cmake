file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_shell.dir/xnfdb_shell.cpp.o"
  "CMakeFiles/xnfdb_shell.dir/xnfdb_shell.cpp.o.d"
  "xnfdb_shell"
  "xnfdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
