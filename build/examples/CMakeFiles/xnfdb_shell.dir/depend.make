# Empty dependencies file for xnfdb_shell.
# This may be replaced when dependencies are built.
