file(REMOVE_RECURSE
  "CMakeFiles/design_browser.dir/design_browser.cpp.o"
  "CMakeFiles/design_browser.dir/design_browser.cpp.o.d"
  "design_browser"
  "design_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
