# Empty dependencies file for design_browser.
# This may be replaced when dependencies are built.
