# Empty compiler generated dependencies file for path_queries.
# This may be replaced when dependencies are built.
