file(REMOVE_RECURSE
  "CMakeFiles/bench_cleanup_rules.dir/bench_cleanup_rules.cc.o"
  "CMakeFiles/bench_cleanup_rules.dir/bench_cleanup_rules.cc.o.d"
  "bench_cleanup_rules"
  "bench_cleanup_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cleanup_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
