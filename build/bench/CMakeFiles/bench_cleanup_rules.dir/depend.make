# Empty dependencies file for bench_cleanup_rules.
# This may be replaced when dependencies are built.
