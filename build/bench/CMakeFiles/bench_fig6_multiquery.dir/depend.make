# Empty dependencies file for bench_fig6_multiquery.
# This may be replaced when dependencies are built.
