file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_multiquery.dir/bench_fig6_multiquery.cc.o"
  "CMakeFiles/bench_fig6_multiquery.dir/bench_fig6_multiquery.cc.o.d"
  "bench_fig6_multiquery"
  "bench_fig6_multiquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multiquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
