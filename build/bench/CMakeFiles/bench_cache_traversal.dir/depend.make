# Empty dependencies file for bench_cache_traversal.
# This may be replaced when dependencies are built.
