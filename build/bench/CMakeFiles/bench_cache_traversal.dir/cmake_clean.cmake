file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_traversal.dir/bench_cache_traversal.cc.o"
  "CMakeFiles/bench_cache_traversal.dir/bench_cache_traversal.cc.o.d"
  "bench_cache_traversal"
  "bench_cache_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
