# Empty dependencies file for xnfdb_workloads.
# This may be replaced when dependencies are built.
