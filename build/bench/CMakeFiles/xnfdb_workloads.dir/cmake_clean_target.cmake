file(REMOVE_RECURSE
  "libxnfdb_workloads.a"
)
