file(REMOVE_RECURSE
  "CMakeFiles/xnfdb_workloads.dir/workloads.cc.o"
  "CMakeFiles/xnfdb_workloads.dir/workloads.cc.o.d"
  "libxnfdb_workloads.a"
  "libxnfdb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfdb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
