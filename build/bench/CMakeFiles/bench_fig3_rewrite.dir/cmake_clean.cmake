file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_rewrite.dir/bench_fig3_rewrite.cc.o"
  "CMakeFiles/bench_fig3_rewrite.dir/bench_fig3_rewrite.cc.o.d"
  "bench_fig3_rewrite"
  "bench_fig3_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
