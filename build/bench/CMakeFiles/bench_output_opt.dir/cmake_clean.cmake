file(REMOVE_RECURSE
  "CMakeFiles/bench_output_opt.dir/bench_output_opt.cc.o"
  "CMakeFiles/bench_output_opt.dir/bench_output_opt.cc.o.d"
  "bench_output_opt"
  "bench_output_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_output_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
