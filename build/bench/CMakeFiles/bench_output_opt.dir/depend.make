# Empty dependencies file for bench_output_opt.
# This may be replaced when dependencies are built.
