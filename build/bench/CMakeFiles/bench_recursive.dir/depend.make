# Empty dependencies file for bench_recursive.
# This may be replaced when dependencies are built.
