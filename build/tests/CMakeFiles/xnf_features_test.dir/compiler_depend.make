# Empty compiler generated dependencies file for xnf_features_test.
# This may be replaced when dependencies are built.
