file(REMOVE_RECURSE
  "CMakeFiles/xnf_features_test.dir/xnf_features_test.cc.o"
  "CMakeFiles/xnf_features_test.dir/xnf_features_test.cc.o.d"
  "xnf_features_test"
  "xnf_features_test.pdb"
  "xnf_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnf_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
