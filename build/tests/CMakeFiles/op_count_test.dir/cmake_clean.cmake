file(REMOVE_RECURSE
  "CMakeFiles/op_count_test.dir/op_count_test.cc.o"
  "CMakeFiles/op_count_test.dir/op_count_test.cc.o.d"
  "op_count_test"
  "op_count_test.pdb"
  "op_count_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
