# Empty dependencies file for op_count_test.
# This may be replaced when dependencies are built.
