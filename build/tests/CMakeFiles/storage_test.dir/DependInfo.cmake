
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/storage_test.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/xnfdb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/xnfdb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/xnfdb_api.dir/DependInfo.cmake"
  "/root/repo/build/src/xnf/CMakeFiles/xnfdb_xnf.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/xnfdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/xnfdb_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/xnfdb_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/qgm/CMakeFiles/xnfdb_qgm.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/xnfdb_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/xnfdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xnfdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
