file(REMOVE_RECURSE
  "CMakeFiles/recursion_property_test.dir/recursion_property_test.cc.o"
  "CMakeFiles/recursion_property_test.dir/recursion_property_test.cc.o.d"
  "recursion_property_test"
  "recursion_property_test.pdb"
  "recursion_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursion_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
