# Empty dependencies file for recursion_property_test.
# This may be replaced when dependencies are built.
