# Empty compiler generated dependencies file for integration_deps_arc_test.
# This may be replaced when dependencies are built.
