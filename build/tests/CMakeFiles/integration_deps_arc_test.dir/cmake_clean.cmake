file(REMOVE_RECURSE
  "CMakeFiles/integration_deps_arc_test.dir/integration_deps_arc_test.cc.o"
  "CMakeFiles/integration_deps_arc_test.dir/integration_deps_arc_test.cc.o.d"
  "integration_deps_arc_test"
  "integration_deps_arc_test.pdb"
  "integration_deps_arc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_deps_arc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
