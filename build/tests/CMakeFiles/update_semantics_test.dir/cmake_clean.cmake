file(REMOVE_RECURSE
  "CMakeFiles/update_semantics_test.dir/update_semantics_test.cc.o"
  "CMakeFiles/update_semantics_test.dir/update_semantics_test.cc.o.d"
  "update_semantics_test"
  "update_semantics_test.pdb"
  "update_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
