# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration_deps_arc_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/sql_exec_test[1]_include.cmake")
include("/root/repo/build/tests/qgm_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/fixpoint_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/composition_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/writeback_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/xnf_features_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/recursion_property_test[1]_include.cmake")
include("/root/repo/build/tests/cursor_test[1]_include.cmake")
include("/root/repo/build/tests/persist_test[1]_include.cmake")
include("/root/repo/build/tests/dot_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/op_count_test[1]_include.cmake")
include("/root/repo/build/tests/update_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
